//! Child-axis-only path expressions (the paper's `π`).
//!
//! Definition 2.1 restricts paths to relative paths that "only employ the
//! child axis ('/'); no wildcards ('*'), conditions ('[p]'), or other axes
//! (e.g. '//')". Paths with embedded conditions (`π̄`) are represented in
//! the WXQuery AST as a plain [`Path`] plus a separate condition list.

use std::fmt;
use std::str::FromStr;

use crate::decimal::Decimal;
use crate::error::XmlError;
use crate::name::Symbol;
use crate::text;
use crate::tree::Node;

/// A relative child-axis path, e.g. `coord/cel/ra`. The empty path refers to
/// the context node itself.
///
/// Steps are interned [`Symbol`]s, so evaluating a path against a tree
/// compares integers, not strings. Ordering remains lexicographic over the
/// step *names* (see the manual `Ord` impl below) so `BTreeMap<Path, _>`
/// keys sort as they did when steps were `String`s.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct Path {
    steps: Vec<Symbol>,
}

impl PartialOrd for Path {
    fn partial_cmp(&self, other: &Path) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Path {
    fn cmp(&self, other: &Path) -> std::cmp::Ordering {
        // Symbol's Ord is lexicographic over the resolved names, so slice
        // comparison gives the same order the Vec<String> representation had.
        self.steps.cmp(&other.steps)
    }
}

impl Path {
    /// The empty path (the context node itself).
    pub fn this() -> Path {
        Path::default()
    }

    /// Builds a path from individual steps, validating each as an XML name.
    pub fn from_steps<I, S>(steps: I) -> Result<Path, XmlError>
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        let mut out = Vec::new();
        for s in steps {
            text::validate_name(s.as_ref())?;
            out.push(Symbol::intern(s.as_ref()));
        }
        Ok(Path { steps: out })
    }

    /// Number of steps.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// `true` for the empty path.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// The steps.
    pub fn steps(&self) -> &[Symbol] {
        &self.steps
    }

    /// Last step (the referenced element's name), if any.
    pub fn leaf(&self) -> Option<&str> {
        self.steps.last().map(|s| s.as_str())
    }

    /// Concatenation `self/other`.
    pub fn join(&self, other: &Path) -> Path {
        let mut steps = self.steps.clone();
        steps.extend(other.steps.iter().cloned());
        Path { steps }
    }

    /// Appends one step.
    pub fn child(&self, step: &str) -> Result<Path, XmlError> {
        text::validate_name(step)?;
        let mut steps = self.steps.clone();
        steps.push(Symbol::intern(step));
        Ok(Path { steps })
    }

    /// `true` if `self` is a (non-strict) prefix of `other`.
    pub fn is_prefix_of(&self, other: &Path) -> bool {
        other.steps.len() >= self.steps.len() && other.steps[..self.steps.len()] == self.steps[..]
    }

    /// Strips `prefix` from the front, if it is a prefix.
    pub fn strip_prefix(&self, prefix: &Path) -> Option<Path> {
        if prefix.is_prefix_of(self) {
            Some(Path {
                steps: self.steps[prefix.steps.len()..].to_vec(),
            })
        } else {
            None
        }
    }

    /// All nodes reachable from `node` through this path. Each step may
    /// fan out over several same-named children.
    pub fn evaluate<'a>(&self, node: &'a Node) -> Vec<&'a Node> {
        let mut frontier = vec![node];
        for &step in &self.steps {
            let mut next = Vec::with_capacity(frontier.len());
            for n in frontier {
                next.extend(n.children().iter().filter(|c| c.symbol() == step));
            }
            if next.is_empty() {
                return Vec::new();
            }
            frontier = next;
        }
        frontier
    }

    /// Appends all nodes reachable through this path to `out` without
    /// allocating a fresh result vector (the fast path for operators that
    /// evaluate the same path once per stream item).
    pub fn evaluate_into<'a>(&self, node: &'a Node, out: &mut Vec<&'a Node>) {
        self.visit(node, &mut |n| out.push(n));
    }

    /// Calls `f` on every node reachable through this path, depth-first,
    /// without allocating at all — the zero-allocation dual of
    /// [`evaluate`](Path::evaluate) for per-item operator hot paths.
    pub fn visit<'a, F: FnMut(&'a Node)>(&self, node: &'a Node, f: &mut F) {
        // Depth-first walk; paths are short (schema depth), so recursion
        // depth is bounded.
        fn rec<'a, F: FnMut(&'a Node)>(steps: &[Symbol], node: &'a Node, f: &mut F) {
            match steps.split_first() {
                None => f(node),
                Some((&step, rest)) => {
                    for c in node.children() {
                        if c.symbol() == step {
                            rec(rest, c, f);
                        }
                    }
                }
            }
        }
        rec(&self.steps, node, f);
    }

    /// First node reachable through this path (document order). Unlike a
    /// greedy walk through the first matching child per step, this
    /// backtracks across repeated siblings, so it agrees with
    /// `evaluate(...).first()`.
    pub fn first<'a>(&self, node: &'a Node) -> Option<&'a Node> {
        fn rec<'a>(steps: &[Symbol], node: &'a Node) -> Option<&'a Node> {
            match steps.split_first() {
                None => Some(node),
                Some((&step, rest)) => node
                    .children()
                    .iter()
                    .filter(|c| c.symbol() == step)
                    .find_map(|c| rec(rest, c)),
            }
        }
        rec(&self.steps, node)
    }

    /// Decimal value of the first reachable node.
    pub fn decimal_value(&self, node: &Node) -> Result<Decimal, XmlError> {
        match self.first(node) {
            Some(n) => n.decimal_value(),
            None => Err(XmlError::ValueParse {
                value: self.to_string(),
                wanted: "decimal",
            }),
        }
    }
}

impl fmt::Display for Path {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, step) in self.steps.iter().enumerate() {
            if i > 0 {
                f.write_str("/")?;
            }
            f.write_str(step.as_str())?;
        }
        Ok(())
    }
}

impl FromStr for Path {
    type Err = XmlError;

    /// Parses `coord/cel/ra`. Rejects absolute paths, `//`, wildcards, and
    /// conditions — anything outside the paper's `π` grammar.
    fn from_str(s: &str) -> Result<Path, XmlError> {
        let invalid = |message: &str| XmlError::InvalidPath {
            path: s.to_string(),
            message: message.to_string(),
        };
        if s.is_empty() {
            return Ok(Path::this());
        }
        if s.starts_with('/') {
            return Err(invalid("π is a relative path; it must not start with '/'"));
        }
        if s.contains("//") {
            return Err(invalid("the descendant axis '//' is not part of π"));
        }
        if s.contains('*') {
            return Err(invalid("wildcards are not part of π"));
        }
        if s.contains('[') || s.contains(']') {
            return Err(invalid("conditions '[p]' are not allowed inside π"));
        }
        let mut steps = Vec::new();
        for step in s.split('/') {
            text::validate_name(step)?;
            steps.push(Symbol::intern(step));
        }
        Ok(Path { steps })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn photon() -> Node {
        Node::elem(
            "photon",
            vec![
                Node::elem(
                    "coord",
                    vec![Node::elem(
                        "cel",
                        vec![Node::leaf("ra", "130.7"), Node::leaf("dec", "-46.2")],
                    )],
                ),
                Node::leaf("en", "1.4"),
            ],
        )
    }

    fn p(s: &str) -> Path {
        s.parse().unwrap()
    }

    #[test]
    fn parse_and_display() {
        assert_eq!(p("coord/cel/ra").to_string(), "coord/cel/ra");
        assert_eq!(p("en").len(), 1);
        assert_eq!(Path::this().to_string(), "");
        assert!(Path::this().is_empty());
    }

    #[test]
    fn parse_rejects_non_pi_grammar() {
        for s in ["/abs", "a//b", "a/*/b", "a[b>1]/c", "a/", "/"] {
            assert!(s.parse::<Path>().is_err(), "{s:?} should be rejected");
        }
    }

    #[test]
    fn evaluate_navigates() {
        let ph = photon();
        let ras = p("coord/cel/ra").evaluate(&ph);
        assert_eq!(ras.len(), 1);
        assert_eq!(ras[0].text(), Some("130.7"));
        assert!(p("coord/det").evaluate(&ph).is_empty());
        assert_eq!(Path::this().evaluate(&ph), vec![&ph]);
    }

    #[test]
    fn evaluate_fans_out_over_repeated_children() {
        let w = Node::elem(
            "w",
            vec![
                Node::elem("i", vec![Node::leaf("v", "1")]),
                Node::elem("i", vec![Node::leaf("v", "2")]),
            ],
        );
        let vs: Vec<_> = p("i/v")
            .evaluate(&w)
            .iter()
            .filter_map(|n| n.text())
            .collect();
        assert_eq!(vs, vec!["1", "2"]);
    }

    #[test]
    fn first_backtracks_over_repeated_siblings() {
        // The first <coord> lacks <cel>; a greedy walk would return None.
        let ph = Node::elem(
            "photon",
            vec![
                Node::elem(
                    "coord",
                    vec![Node::elem("det", vec![Node::leaf("dx", "1")])],
                ),
                Node::elem(
                    "coord",
                    vec![Node::elem("cel", vec![Node::leaf("ra", "120.5")])],
                ),
            ],
        );
        let path = p("coord/cel/ra");
        assert_eq!(path.first(&ph).and_then(|n| n.text()), Some("120.5"));
        assert_eq!(path.first(&ph), path.evaluate(&ph).first().copied());
    }

    #[test]
    fn first_and_decimal_value() {
        let ph = photon();
        assert_eq!(p("en").first(&ph).unwrap().text(), Some("1.4"));
        assert_eq!(
            p("coord/cel/dec").decimal_value(&ph).unwrap(),
            "-46.2".parse::<Decimal>().unwrap()
        );
        assert!(p("missing").decimal_value(&ph).is_err());
    }

    #[test]
    fn prefix_relations() {
        assert!(p("coord").is_prefix_of(&p("coord/cel/ra")));
        assert!(p("coord/cel").is_prefix_of(&p("coord/cel")));
        assert!(!p("cel").is_prefix_of(&p("coord/cel")));
        assert_eq!(
            p("coord/cel/ra").strip_prefix(&p("coord")).unwrap(),
            p("cel/ra")
        );
        assert!(p("coord/cel").strip_prefix(&p("en")).is_none());
        assert!(Path::this().is_prefix_of(&p("en")));
    }

    #[test]
    fn join_and_child() {
        assert_eq!(p("coord").join(&p("cel/ra")), p("coord/cel/ra"));
        assert_eq!(p("coord").child("cel").unwrap(), p("coord/cel"));
        assert!(p("coord").child("bad name").is_err());
        assert_eq!(Path::this().join(&p("en")), p("en"));
    }

    #[test]
    fn leaf_name() {
        assert_eq!(p("coord/cel/ra").leaf(), Some("ra"));
        assert_eq!(Path::this().leaf(), None);
    }

    #[test]
    fn ordering_is_lexicographic_for_map_keys() {
        let mut v = vec![p("en"), p("coord/cel"), p("coord")];
        v.sort();
        assert_eq!(v, vec![p("coord"), p("coord/cel"), p("en")]);
    }
}
