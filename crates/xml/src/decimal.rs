//! Exact fixed-point decimals.
//!
//! The paper restricts predicate constants to "integer values or decimal
//! values with a finite number of decimal places" (Section 2). Predicate
//! graphs compare and add such constants; binary floating point would make
//! implication tests (`ζ(x) ⇐ ζ(y)`) unsound at the boundaries the paper's
//! example queries actually use (`120.0`, `-49.0`, `1.3`, …). We therefore
//! represent every value as `units · 10^-scale` with `i128` units.

use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, Mul, Neg, Sub};
use std::str::FromStr;

use crate::error::XmlError;

/// Maximum number of decimal places we accept. Far beyond anything the data
/// streams contain, while keeping sums of many values comfortably inside
/// `i128`.
pub const MAX_SCALE: u32 = 18;

/// Maximum magnitude (in units) accepted from *untrusted* input
/// ([`FromStr`]): 10¹⁹. Together with [`MAX_SCALE`] this keeps every
/// rescaling (`units · 10^Δscale ≤ 10¹⁹ · 10¹⁸ = 10³⁷`) inside `i128`
/// (≈ 1.7·10³⁸), so comparisons and window-grid arithmetic over parsed
/// stream values cannot overflow. Internal arithmetic (sums of many
/// values) may exceed this bound; comparisons stay safe via checked
/// rescaling.
pub const MAX_INPUT_UNITS: i128 = 10_000_000_000_000_000_000;

/// An exact decimal number: `units · 10^-scale`.
///
/// The representation is kept canonical (no trailing zero digits in the
/// fractional part, and scale 0 for integers), so derived `Eq`/`Hash` agree
/// with numeric equality.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Decimal {
    units: i128,
    scale: u32,
}

const POW10: [i128; 19] = [
    1,
    10,
    100,
    1_000,
    10_000,
    100_000,
    1_000_000,
    10_000_000,
    100_000_000,
    1_000_000_000,
    10_000_000_000,
    100_000_000_000,
    1_000_000_000_000,
    10_000_000_000_000,
    100_000_000_000_000,
    1_000_000_000_000_000,
    10_000_000_000_000_000,
    100_000_000_000_000_000,
    1_000_000_000_000_000_000,
];

impl Decimal {
    /// Zero.
    pub const ZERO: Decimal = Decimal { units: 0, scale: 0 };
    /// One.
    pub const ONE: Decimal = Decimal { units: 1, scale: 0 };

    /// Builds a decimal from raw units and a scale, canonicalizing the result.
    ///
    /// # Panics
    /// Panics if `scale > MAX_SCALE`.
    pub fn new(units: i128, scale: u32) -> Decimal {
        assert!(
            scale <= MAX_SCALE,
            "decimal scale {scale} exceeds MAX_SCALE"
        );
        let mut d = Decimal { units, scale };
        d.canonicalize();
        d
    }

    /// An integer value.
    pub fn from_int(v: i64) -> Decimal {
        Decimal {
            units: v as i128,
            scale: 0,
        }
    }

    fn canonicalize(&mut self) {
        if self.units == 0 {
            self.scale = 0;
            return;
        }
        while self.scale > 0 && self.units % 10 == 0 {
            self.units /= 10;
            self.scale -= 1;
        }
    }

    /// Raw units at this decimal's scale.
    pub fn units(&self) -> i128 {
        self.units
    }

    /// Number of decimal places in canonical form.
    pub fn scale(&self) -> u32 {
        self.scale
    }

    /// Units of this value at a *given* scale (≥ its own canonical scale).
    ///
    /// # Panics
    /// Panics if `scale` is smaller than the canonical scale (the value would
    /// not be representable) or exceeds [`MAX_SCALE`].
    pub fn units_at_scale(&self, scale: u32) -> i128 {
        assert!(scale <= MAX_SCALE);
        assert!(
            scale >= self.scale,
            "cannot rescale {self} to {scale} decimal places without loss"
        );
        self.units * POW10[(scale - self.scale) as usize]
    }

    /// Smallest positive decimal representable at `scale` decimal places
    /// (one "unit in the last place"). Used to normalize strict comparisons:
    /// over values with at most `scale` decimal places, `x < c` is exactly
    /// `x ≤ c − ulp(scale)`.
    pub fn ulp(scale: u32) -> Decimal {
        assert!(scale <= MAX_SCALE);
        Decimal::new(1, scale)
    }

    /// `true` if the value is an integer.
    pub fn is_integer(&self) -> bool {
        self.scale == 0
    }

    /// Sign: -1, 0, or 1.
    pub fn signum(&self) -> i32 {
        match self.units.cmp(&0) {
            Ordering::Less => -1,
            Ordering::Equal => 0,
            Ordering::Greater => 1,
        }
    }

    /// Checked addition; `None` on overflow.
    pub fn checked_add(self, rhs: Decimal) -> Option<Decimal> {
        let scale = self.scale.max(rhs.scale);
        let a = self
            .units
            .checked_mul(POW10[(scale - self.scale) as usize])?;
        let b = rhs.units.checked_mul(POW10[(scale - rhs.scale) as usize])?;
        Some(Decimal::new(a.checked_add(b)?, scale))
    }

    /// Checked subtraction; `None` on overflow.
    pub fn checked_sub(self, rhs: Decimal) -> Option<Decimal> {
        self.checked_add(-rhs)
    }

    /// Converts to `f64` (for statistics and metric output only; never used
    /// in predicate reasoning).
    pub fn to_f64(&self) -> f64 {
        self.units as f64 / POW10[self.scale as usize] as f64
    }

    /// Builds the closest decimal with `scale` places to an `f64` (used by
    /// synthetic data generators; again never in predicate reasoning).
    pub fn from_f64_rounded(v: f64, scale: u32) -> Decimal {
        assert!(scale <= MAX_SCALE);
        let units = (v * POW10[scale as usize] as f64).round() as i128;
        Decimal::new(units, scale)
    }
}

impl Add for Decimal {
    type Output = Decimal;
    fn add(self, rhs: Decimal) -> Decimal {
        self.checked_add(rhs).expect("decimal addition overflow")
    }
}

impl Sub for Decimal {
    type Output = Decimal;
    fn sub(self, rhs: Decimal) -> Decimal {
        self.checked_sub(rhs).expect("decimal subtraction overflow")
    }
}

impl Neg for Decimal {
    type Output = Decimal;
    fn neg(self) -> Decimal {
        Decimal {
            units: -self.units,
            scale: self.scale,
        }
    }
}

impl Mul<i64> for Decimal {
    type Output = Decimal;
    fn mul(self, rhs: i64) -> Decimal {
        Decimal::new(
            self.units
                .checked_mul(rhs as i128)
                .expect("decimal multiplication overflow"),
            self.scale,
        )
    }
}

impl PartialOrd for Decimal {
    fn partial_cmp(&self, other: &Decimal) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Decimal {
    fn cmp(&self, other: &Decimal) -> Ordering {
        let scale = self.scale.max(other.scale);
        // At most one side actually rescales (the other multiplies by 1),
        // so an overflowing side is decided by its sign alone.
        let a = self.units.checked_mul(POW10[(scale - self.scale) as usize]);
        let b = other
            .units
            .checked_mul(POW10[(scale - other.scale) as usize]);
        match (a, b) {
            (Some(a), Some(b)) => a.cmp(&b),
            (None, _) => {
                if self.units > 0 {
                    Ordering::Greater
                } else {
                    Ordering::Less
                }
            }
            (_, None) => {
                if other.units > 0 {
                    Ordering::Less
                } else {
                    Ordering::Greater
                }
            }
        }
    }
}

impl fmt::Display for Decimal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.scale == 0 {
            return write!(f, "{}", self.units);
        }
        let sign = if self.units < 0 { "-" } else { "" };
        let abs = self.units.unsigned_abs();
        let div = POW10[self.scale as usize] as u128;
        let int = abs / div;
        let frac = abs % div;
        write!(f, "{sign}{int}.{frac:0width$}", width = self.scale as usize)
    }
}

impl FromStr for Decimal {
    type Err = XmlError;

    fn from_str(s: &str) -> Result<Decimal, XmlError> {
        let err = || XmlError::ValueParse {
            value: s.to_string(),
            wanted: "decimal",
        };
        let t = s.trim();
        if t.is_empty() {
            return Err(err());
        }
        let (neg, t) = match t.strip_prefix('-') {
            Some(rest) => (true, rest),
            None => (false, t.strip_prefix('+').unwrap_or(t)),
        };
        let (int_part, frac_part) = match t.split_once('.') {
            Some((i, fr)) => (i, fr),
            None => (t, ""),
        };
        if int_part.is_empty() && frac_part.is_empty() {
            return Err(err());
        }
        if !int_part.chars().all(|c| c.is_ascii_digit())
            || !frac_part.chars().all(|c| c.is_ascii_digit())
        {
            return Err(err());
        }
        if frac_part.len() as u32 > MAX_SCALE {
            return Err(err());
        }
        let mut units: i128 = 0;
        for c in int_part.chars().chain(frac_part.chars()) {
            units = units.checked_mul(10).ok_or_else(err)?;
            units = units
                .checked_add((c as u8 - b'0') as i128)
                .ok_or_else(err)?;
        }
        if units > MAX_INPUT_UNITS {
            return Err(err());
        }
        if neg {
            units = -units;
        }
        Ok(Decimal::new(units, frac_part.len() as u32))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(s: &str) -> Decimal {
        s.parse().unwrap()
    }

    #[test]
    fn parse_and_display_round_trip() {
        for s in [
            "0", "1", "-1", "1.3", "-49.0", "120.0", "0.001", "-0.5", "138",
        ] {
            let v = d(s);
            let back: Decimal = v.to_string().parse().unwrap();
            assert_eq!(v, back, "round trip through {s:?} -> {v}");
        }
    }

    #[test]
    fn canonical_form_strips_trailing_zeros() {
        assert_eq!(d("1.300"), d("1.3"));
        assert_eq!(d("1.300").scale(), 1);
        assert_eq!(d("-49.0"), Decimal::from_int(-49));
        assert_eq!(d("0.0"), Decimal::ZERO);
        assert_eq!(d("0.0").scale(), 0);
    }

    #[test]
    fn display_pads_fraction() {
        assert_eq!(d("0.001").to_string(), "0.001");
        assert_eq!(d("-0.001").to_string(), "-0.001");
        assert_eq!(Decimal::new(1205, 1).to_string(), "120.5");
    }

    #[test]
    fn ordering_across_scales() {
        assert!(d("1.3") > d("1.25"));
        assert!(d("-49.0") < d("-48.9"));
        assert!(d("120") < d("120.5"));
        assert_eq!(d("2.50").cmp(&d("2.5")), Ordering::Equal);
    }

    #[test]
    fn arithmetic() {
        assert_eq!(d("1.3") + d("0.7"), Decimal::from_int(2));
        assert_eq!(d("1.3") - d("1.3"), Decimal::ZERO);
        assert_eq!(d("130.5") - d("120.0"), d("10.5"));
        assert_eq!(-d("1.5"), d("-1.5"));
    }

    #[test]
    fn ulp_is_smallest_step() {
        assert_eq!(Decimal::ulp(1), d("0.1"));
        assert_eq!(Decimal::ulp(0), Decimal::ONE);
        assert_eq!(d("1.3") - Decimal::ulp(1), d("1.2"));
    }

    #[test]
    fn units_at_scale_rescales() {
        assert_eq!(d("1.3").units_at_scale(3), 1300);
        assert_eq!(d("-2").units_at_scale(2), -200);
    }

    #[test]
    #[should_panic(expected = "without loss")]
    fn units_at_scale_rejects_lossy() {
        let _ = d("1.25").units_at_scale(1);
    }

    #[test]
    fn parse_rejects_garbage() {
        for s in ["", ".", "-", "1.2.3", "abc", "1e5", "--1", "1..2"] {
            assert!(s.parse::<Decimal>().is_err(), "{s:?} should not parse");
        }
    }

    #[test]
    fn parse_accepts_common_forms() {
        assert_eq!(d(".5"), Decimal::new(5, 1));
        assert_eq!(d("+1.5"), d("1.5"));
        assert_eq!(d(" 42 "), Decimal::from_int(42));
    }

    #[test]
    fn f64_conversion_is_close() {
        assert!((d("1.3").to_f64() - 1.3).abs() < 1e-12);
        assert_eq!(Decimal::from_f64_rounded(1.2999999, 2), d("1.3"));
    }

    #[test]
    fn parse_rejects_oversized_magnitudes() {
        // Values beyond MAX_INPUT_UNITS are rejected at the untrusted
        // boundary so downstream rescaling cannot overflow.
        assert!("99999999999999999999999999999999999999"
            .parse::<Decimal>()
            .is_err());
        assert!("10000000000000000001".parse::<Decimal>().is_err()); // > 10^19 units
        assert!("10000000000000000000".parse::<Decimal>().is_ok()); // exactly 10^19
        assert!("-10000000000000000001".parse::<Decimal>().is_err());
    }

    #[test]
    fn cmp_survives_internal_overflow() {
        // Internal arithmetic can exceed MAX_INPUT_UNITS; comparing such a
        // value against one of a different scale must not overflow.
        let huge = Decimal::new(i128::MAX / 2, 0);
        let small = Decimal::new(15, 1); // 1.5
        assert!(huge > small);
        assert!(small < huge);
        let neg_huge = Decimal::new(i128::MIN / 2, 0);
        assert!(neg_huge < small);
        assert!(small > neg_huge);
    }

    #[test]
    fn checked_ops_catch_overflow() {
        let big = Decimal::new(i128::MAX / 2, 0);
        assert!(big.checked_add(big).is_none() || big.checked_add(big).is_some());
        let huge = Decimal::new(i128::MAX, 0);
        assert!(huge.checked_add(Decimal::ONE).is_none());
    }

    #[test]
    fn signum() {
        assert_eq!(d("-3.2").signum(), -1);
        assert_eq!(Decimal::ZERO.signum(), 0);
        assert_eq!(d("0.01").signum(), 1);
    }
}
