//! XML serialization and byte-size accounting.
//!
//! The cost model of the paper (Section 3.2) works with `size(p)`, the
//! average serialized size of one data stream item. The network simulator
//! charges edges by the actual number of bytes that cross them. Both use
//! this module, so the size computed by [`serialized_size`] is defined to be
//! exactly the length of [`node_to_string`]'s output.

use crate::text;
use crate::tree::Node;

/// Serializes a node compactly (no insignificant whitespace), appending to
/// `out`.
pub fn write_node_into(node: &Node, out: &mut String) {
    let name = node.name();
    if node.is_empty() {
        out.push('<');
        out.push_str(name);
        out.push_str("/>");
        return;
    }
    out.push('<');
    out.push_str(name);
    out.push('>');
    if let Some(t) = node.text() {
        text::escape_text_into(t, out);
    }
    for child in node.children() {
        write_node_into(child, out);
    }
    out.push_str("</");
    out.push_str(name);
    out.push('>');
}

/// Serializes a node compactly into a fresh string.
pub fn node_to_string(node: &Node) -> String {
    let mut out = String::with_capacity(serialized_size(node));
    write_node_into(node, &mut out);
    out
}

/// Exact number of bytes [`node_to_string`] would produce, without
/// allocating.
pub fn serialized_size(node: &Node) -> usize {
    if node.is_empty() {
        return node.name().len() + 3; // <name/>
    }
    let mut size = 2 * node.name().len() + 5; // <name></name>
    if let Some(t) = node.text() {
        size += text::escaped_len(t);
    }
    for child in node.children() {
        size += serialized_size(child);
    }
    size
}

/// Pretty-prints a node with two-space indentation (for human inspection in
/// examples and experiment logs; never used for size accounting).
pub fn pretty(node: &Node) -> String {
    let mut out = String::new();
    pretty_into(node, 0, &mut out);
    out
}

fn pretty_into(node: &Node, depth: usize, out: &mut String) {
    for _ in 0..depth {
        out.push_str("  ");
    }
    let name = node.name();
    if node.is_empty() {
        out.push('<');
        out.push_str(name);
        out.push_str("/>\n");
        return;
    }
    out.push('<');
    out.push_str(name);
    out.push('>');
    if let Some(t) = node.text() {
        text::escape_text_into(t, out);
        out.push_str("</");
        out.push_str(name);
        out.push_str(">\n");
        return;
    }
    out.push('\n');
    for child in node.children() {
        pretty_into(child, depth + 1, out);
    }
    for _ in 0..depth {
        out.push_str("  ");
    }
    out.push_str("</");
    out.push_str(name);
    out.push_str(">\n");
}

/// Opening tag for a stream root (used when the simulator ships streams as
/// byte sequences).
pub fn stream_open(root: &str) -> String {
    format!("<{root}>")
}

/// Closing tag for a stream root.
pub fn stream_close(root: &str) -> String {
    format!("</{root}>")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::Node;

    fn photon() -> Node {
        Node::elem(
            "photon",
            vec![
                Node::leaf("phc", "57"),
                Node::elem(
                    "cel",
                    vec![Node::leaf("ra", "130.7"), Node::leaf("dec", "-46.2")],
                ),
                Node::leaf("en", "1.4"),
            ],
        )
    }

    #[test]
    fn compact_serialization() {
        assert_eq!(
            node_to_string(&photon()),
            "<photon><phc>57</phc><cel><ra>130.7</ra><dec>-46.2</dec></cel><en>1.4</en></photon>"
        );
    }

    #[test]
    fn size_matches_output_length() {
        for node in [
            photon(),
            Node::empty("x"),
            Node::leaf("t", "a < b & c"),
            Node::elem("w", vec![Node::empty("a"), Node::leaf("b", "")]),
        ] {
            assert_eq!(
                serialized_size(&node),
                node_to_string(&node).len(),
                "for {node:?}"
            );
        }
    }

    #[test]
    fn empty_leaf_with_empty_text_serializes_as_pair() {
        // `Node::leaf("b", "")` has Some("") text, so it is not `is_empty`.
        assert_eq!(node_to_string(&Node::leaf("b", "")), "<b></b>");
        assert_eq!(node_to_string(&Node::empty("b")), "<b/>");
    }

    #[test]
    fn escaping_applied() {
        assert_eq!(
            node_to_string(&Node::leaf("t", "1<2&3>2")),
            "<t>1&lt;2&amp;3&gt;2</t>"
        );
    }

    #[test]
    fn round_trip_through_parser() {
        let n = photon();
        assert_eq!(Node::parse(&node_to_string(&n)).unwrap(), n);
    }

    #[test]
    fn pretty_output_reparses_to_same_tree() {
        let n = photon();
        assert_eq!(Node::parse(&pretty(&n)).unwrap(), n);
        assert!(pretty(&n).contains("\n  <cel>"));
    }

    #[test]
    fn stream_framing() {
        assert_eq!(stream_open("photons"), "<photons>");
        assert_eq!(stream_close("photons"), "</photons>");
    }
}
