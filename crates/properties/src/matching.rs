//! `MatchProperties` (Algorithm 2) and `MatchAggregations` (Section 3.3).

use dss_predicate::match_predicates;

use crate::operator::{AggOp, AggregationSpec, Operator, WindowOutputSpec};
use crate::properties::InputProperties;

/// Matching for window-contents operators: can the windowed item sequences
/// described by `reused` be used to produce those described by `new`?
///
/// Window contents compose exactly like distributive aggregates — a coarse
/// window's contents are the concatenation of its non-overlapping tiles —
/// so the same three modulo conditions apply, plus (as with aggregates) the
/// pre-windowing selections must be semantically identical: an item missing
/// from a reused window cannot be recovered downstream.
pub fn match_window_output(reused: &WindowOutputSpec, new: &WindowOutputSpec) -> bool {
    let same_selection = match_predicates(&reused.pre_selection, &new.pre_selection)
        && match_predicates(&new.pre_selection, &reused.pre_selection);
    same_selection && new.window.shareable_from(&reused.window)
}

/// `MatchAggregations`: can the results of the aggregation described by
/// `reused` be used to compute the aggregation described by `new`?
///
/// Conditions (Section 3.3, "Window-based Aggregation"):
///
/// 1. Compatible aggregation operators. Normally they must be equal; but
///    because `avg` aggregates are internally transported as their
///    `(sum, count)` pair, a reused `avg` also serves new `sum` and `count`
///    subscriptions.
/// 2. Same aggregated element (same input data is checked by the caller at
///    the stream level).
/// 3. Selections applied *before* aggregation must be the same in both —
///    implication is not enough once values are folded into aggregates.
/// 4. If the reused aggregation result was filtered, the new subscription
///    must apply the same or a more restrictive filter (otherwise required
///    partials may have been dropped).
/// 5. Window compatibility: `Δ' mod Δ = 0`, `Δ mod µ = 0`, `µ' mod µ = 0`,
///    with equal ordered reference elements for `diff` windows.
pub fn match_aggregations(reused: &AggregationSpec, new: &AggregationSpec) -> bool {
    let ops_compatible = reused.op == new.op
        || (reused.op == AggOp::Avg && matches!(new.op, AggOp::Sum | AggOp::Count));
    if !ops_compatible {
        return false;
    }
    if reused.element != new.element {
        return false;
    }
    // Pre-aggregation selections must be semantically identical.
    let same_selection = match_predicates(&reused.pre_selection, &new.pre_selection)
        && match_predicates(&new.pre_selection, &reused.pre_selection);
    if !same_selection {
        return false;
    }
    if !reused.result_filter.is_trivial() {
        // A filtered aggregate stream is missing the windows its filter
        // dropped. Those windows are unrecoverable, so reuse is only sound
        // when (a) no window composition is needed — the windows are
        // identical — and (b) the new subscription filters at least as
        // restrictively. ("Reusing such aggregate values for computing
        // more coarse-grained window aggregates is not possible in
        // general", Section 3.3 — here enforced.)
        if new.window != reused.window {
            return false;
        }
        // Filters on different aggregate operators compare different
        // quantities (an avg threshold says nothing about a sum), so the
        // restrictiveness check is only meaningful for equal operators.
        if reused.op != new.op {
            return false;
        }
        if !new
            .result_filter
            .at_least_as_restrictive_as(&reused.result_filter)
        {
            return false;
        }
        return true;
    }
    new.window.shareable_from(&reused.window)
}

/// `MatchProperties` (Algorithm 2) for one input stream: `true` iff the
/// data stream described by `stream_props` can be shared to answer the
/// subscription input described by `new_props`.
///
/// For every operator applied to the candidate stream there must be a
/// corresponding operator in the new subscription with compatible
/// conditions — otherwise the stream is missing data the subscription
/// needs:
///
/// * selection: the new predicates must imply the stream's
///   (`MatchPredicates`),
/// * projection: the stream's output elements must cover everything the
///   subscription references (`R ⊇ R'`),
/// * aggregation: `MatchAggregations`,
/// * unknown (user-defined) operators: assumed deterministic, shareable
///   only with an identical input vector.
pub fn match_input_properties(stream_props: &InputProperties, new_props: &InputProperties) -> bool {
    // Lines 1–4: the original input streams must be identical.
    if !stream_props.same_origin(new_props) {
        return false;
    }
    // Lines 6–36: every operator of the stream needs a compatible partner.
    for o in stream_props.operators() {
        let mut matched = false;
        for o_new in new_props.operators() {
            if o.kind() != o_new.kind() {
                continue;
            }
            if same_kind_compatible(o, o_new) {
                matched = true;
                break;
            }
        }
        if !matched {
            return false;
        }
    }
    true
}

/// The kind-specific compatibility check of Algorithm 2's inner loop.
/// Callers guarantee `o.kind() == o_new.kind()`.
fn same_kind_compatible(o: &Operator, o_new: &Operator) -> bool {
    match (o, o_new) {
        (Operator::Selection(g), Operator::Selection(g_new)) => match_predicates(g, g_new),
        (Operator::Projection(r), Operator::Projection(r_new)) => r.covers(r_new),
        (Operator::Aggregation(c), Operator::Aggregation(c_new)) => match_aggregations(c, c_new),
        (Operator::WindowOutput(w), Operator::WindowOutput(w_new)) => match_window_output(w, w_new),
        (
            Operator::Udf { params, .. },
            Operator::Udf {
                params: new_params, ..
            },
        ) => params == new_params,
        _ => unreachable!("kind equality guarantees identical variants"),
    }
}

/// Why [`match_input_properties`] rejected a candidate, named after the
/// paper's check that said no.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MatchFailure {
    /// Algorithm 2 lines 1–4: the original input streams differ.
    Origin,
    /// An operator of the shared stream has no same-kind partner in the new
    /// query at all — a structural `MatchProperties` failure.
    MissingPartner { kind: &'static str },
    /// Same-kind partners exist but every one failed the kind's
    /// compatibility check (`MatchPredicates`, `MatchAggregations`, …).
    CheckFailed {
        kind: &'static str,
        check: &'static str,
    },
}

impl MatchFailure {
    /// The paper-level check name (`MatchProperties`, `MatchPredicates`,
    /// `MatchAggregations`, `MatchWindowOutput`).
    pub fn check_name(&self) -> &'static str {
        match self {
            MatchFailure::Origin | MatchFailure::MissingPartner { .. } => "MatchProperties",
            MatchFailure::CheckFailed { check, .. } => check,
        }
    }

    /// The kind of the unmatched stream operator, if the failure is
    /// operator-level.
    pub fn operator_kind(&self) -> Option<&'static str> {
        match self {
            MatchFailure::Origin => None,
            MatchFailure::MissingPartner { kind } | MatchFailure::CheckFailed { kind, .. } => {
                Some(kind)
            }
        }
    }
}

fn operator_kind_name(o: &Operator) -> &'static str {
    match o {
        Operator::Selection(_) => "selection",
        Operator::Projection(_) => "projection",
        Operator::Aggregation(_) => "aggregation",
        Operator::WindowOutput(_) => "window-output",
        Operator::Udf { .. } => "udf",
    }
}

fn operator_check_name(o: &Operator) -> &'static str {
    match o {
        Operator::Selection(_) => "MatchPredicates",
        Operator::Aggregation(_) => "MatchAggregations",
        Operator::WindowOutput(_) => "MatchWindowOutput",
        // Projection cover and UDF parameter equality are structural parts
        // of MatchProperties itself.
        Operator::Projection(_) | Operator::Udf { .. } => "MatchProperties",
    }
}

/// [`match_input_properties`] with a reason: `Ok(())` when the candidate
/// stream can serve the new query, otherwise which check rejected it.
/// Exactly as strict as the boolean form — used by the tracing layer to
/// explain rejections without burdening the hot path.
pub fn explain_match_input_properties(
    stream_props: &InputProperties,
    new_props: &InputProperties,
) -> Result<(), MatchFailure> {
    if !stream_props.same_origin(new_props) {
        return Err(MatchFailure::Origin);
    }
    for o in stream_props.operators() {
        let mut saw_kind = false;
        let mut matched = false;
        for o_new in new_props.operators() {
            if o.kind() != o_new.kind() {
                continue;
            }
            saw_kind = true;
            if same_kind_compatible(o, o_new) {
                matched = true;
                break;
            }
        }
        if !matched {
            let kind = operator_kind_name(o);
            return Err(if saw_kind {
                MatchFailure::CheckFailed {
                    kind,
                    check: operator_check_name(o),
                }
            } else {
                MatchFailure::MissingPartner { kind }
            });
        }
    }
    Ok(())
}

/// Stream *widening* (the paper's ongoing work): computes properties of a
/// stream that contains everything **both** inputs need, obtained by
/// loosening the existing stream's operators — the selection becomes the
/// predicate hull, the projection the union of output sets. Consumers of
/// either original stream re-apply their own narrower operators downstream.
///
/// Only selection/projection chains are widenable: folding values into
/// aggregates or windows loses the items needed to widen. Returns `None`
/// when widening is not possible, and also when one side already matches
/// the other (no widening needed — plain sharing applies).
pub fn widen_input(a: &InputProperties, b: &InputProperties) -> Option<InputProperties> {
    if !a.same_origin(b) {
        return None;
    }
    if match_input_properties(a, b) {
        return None; // plain sharing already applies
    }
    let simple = |p: &InputProperties| {
        p.operators()
            .iter()
            .all(|o| matches!(o, Operator::Selection(_) | Operator::Projection(_)))
    };
    if !simple(a) || !simple(b) {
        return None;
    }
    // Widened selection: the hull, dropped entirely when either side is
    // unfiltered.
    let mut ops = Vec::new();
    if let (Some(ga), Some(gb)) = (a.selection(), b.selection()) {
        let hull = ga.hull(gb);
        if !hull.is_trivial() {
            ops.push(Operator::Selection(hull));
        }
    }
    // Widened projection: the widened stream must *carry* everything either
    // side references — downstream restore-selections read predicate
    // elements that may not be in anyone's output set — so the widened
    // output is the union of the referenced sets (each consumer re-projects
    // to its own narrower output downstream).
    if let (Some(pa), Some(pb)) = (a.projection(), b.projection()) {
        let referenced: std::collections::BTreeSet<_> =
            pa.referenced.union(&pb.referenced).cloned().collect();
        ops.push(Operator::Projection(crate::operator::ProjectionSpec {
            output: referenced.clone(),
            referenced,
        }));
    }
    let widened = InputProperties::new(a.stream(), ops).ok()?;
    // Sanity: the widened stream must serve both sides.
    debug_assert!(match_input_properties(&widened, a));
    debug_assert!(match_input_properties(&widened, b));
    Some(widened)
}

/// Pairs an operator kind with itself across two chains — helper used by
/// the planner to determine which *additional* operators must be installed
/// on top of a reused stream (everything in `new_props` not already covered
/// by `stream_props` semantics is re-applied; re-applying an operator the
/// stream already satisfies is harmless for selections/projections).
pub fn residual_operators(
    stream_props: &InputProperties,
    new_props: &InputProperties,
) -> Vec<Operator> {
    // If the stream is the unmodified original, everything must be applied.
    if stream_props.is_original() {
        return new_props.operators().to_vec();
    }
    new_props
        .operators()
        .iter()
        .filter(|o_new| {
            // Drop operators that are *exactly* satisfied by the stream
            // already; keep the rest for installation.
            !stream_props.operators().iter().any(|o| match (o, *o_new) {
                (Operator::Selection(g), Operator::Selection(g_new)) => {
                    // The stream's filter equals the new one semantically.
                    match_predicates(g, g_new) && match_predicates(g_new, g)
                }
                (Operator::Projection(r), Operator::Projection(r_new)) => {
                    r.covers(r_new) && r_new.covers(r)
                }
                (Operator::Aggregation(c), Operator::Aggregation(c_new)) => {
                    // Identical aggregation (same op, window, filter):
                    // nothing to re-apply. A compatible-but-coarser window
                    // still needs a re-aggregation operator.
                    c == c_new
                }
                (Operator::WindowOutput(w), Operator::WindowOutput(w_new)) => {
                    // Identical windowing: nothing to re-apply; a coarser
                    // compatible window still needs a re-windowing operator.
                    w == w_new
                }
                (
                    Operator::Udf { name, params },
                    Operator::Udf {
                        name: n2,
                        params: p2,
                    },
                ) => name == n2 && params == p2,
                _ => false,
            })
        })
        .cloned()
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operator::{ProjectionSpec, ResultFilter};
    use crate::window::WindowSpec;
    use dss_predicate::{Atom, CompOp, PredicateGraph};
    use dss_xml::{Decimal, Path};

    fn p(s: &str) -> Path {
        s.parse().unwrap()
    }

    fn d(s: &str) -> Decimal {
        s.parse().unwrap()
    }

    fn q1_selection() -> PredicateGraph {
        PredicateGraph::from_atoms(&[
            Atom::var_const(p("coord/cel/ra"), CompOp::Ge, d("120.0")),
            Atom::var_const(p("coord/cel/ra"), CompOp::Le, d("138.0")),
            Atom::var_const(p("coord/cel/dec"), CompOp::Ge, d("-49.0")),
            Atom::var_const(p("coord/cel/dec"), CompOp::Le, d("-40.0")),
        ])
    }

    fn q2_selection() -> PredicateGraph {
        PredicateGraph::from_atoms(&[
            Atom::var_const(p("en"), CompOp::Ge, d("1.3")),
            Atom::var_const(p("coord/cel/ra"), CompOp::Ge, d("130.5")),
            Atom::var_const(p("coord/cel/ra"), CompOp::Le, d("135.5")),
            Atom::var_const(p("coord/cel/dec"), CompOp::Ge, d("-48.0")),
            Atom::var_const(p("coord/cel/dec"), CompOp::Le, d("-45.0")),
        ])
    }

    fn q1_props() -> InputProperties {
        InputProperties::new(
            "photons",
            vec![
                Operator::Selection(q1_selection()),
                Operator::Projection(ProjectionSpec::returning([
                    p("coord/cel/ra"),
                    p("coord/cel/dec"),
                    p("phc"),
                    p("en"),
                    p("det_time"),
                ])),
            ],
        )
        .unwrap()
    }

    fn q2_props() -> InputProperties {
        InputProperties::new(
            "photons",
            vec![
                Operator::Selection(q2_selection()),
                Operator::Projection(ProjectionSpec::returning([
                    p("coord/cel/ra"),
                    p("coord/cel/dec"),
                    p("en"),
                    p("det_time"),
                ])),
            ],
        )
        .unwrap()
    }

    /// The motivating example: Query 2's result is completely contained in
    /// Query 1's answer, so Q1's stream is shareable for Q2 — not vice
    /// versa.
    #[test]
    fn q2_can_reuse_q1_stream() {
        assert!(match_input_properties(&q1_props(), &q2_props()));
        assert!(!match_input_properties(&q2_props(), &q1_props()));
    }

    #[test]
    fn different_origin_streams_never_match() {
        let other = InputProperties::original("spectra");
        assert!(!match_input_properties(&other, &q2_props()));
    }

    /// The explain variant agrees with the boolean form and names the
    /// check that lost.
    #[test]
    fn explain_agrees_and_names_the_losing_check() {
        assert_eq!(
            explain_match_input_properties(&q1_props(), &q2_props()),
            Ok(())
        );

        let other = InputProperties::original("spectra");
        assert_eq!(
            explain_match_input_properties(&other, &q2_props()),
            Err(MatchFailure::Origin)
        );

        // Q2's narrower selection cannot serve Q1: the selection partner
        // exists but MatchPredicates fails.
        let failure = explain_match_input_properties(&q2_props(), &q1_props()).unwrap_err();
        assert_eq!(
            failure,
            MatchFailure::CheckFailed {
                kind: "selection",
                check: "MatchPredicates"
            }
        );
        assert_eq!(failure.check_name(), "MatchPredicates");
        assert_eq!(failure.operator_kind(), Some("selection"));

        // A filtered stream offered to an unfiltered subscription: the
        // stream's selection has no partner at all.
        let unfiltered = InputProperties::new(
            "photons",
            vec![Operator::Projection(ProjectionSpec::returning([p("en")]))],
        )
        .unwrap();
        let filtered =
            InputProperties::new("photons", vec![Operator::Selection(q1_selection())]).unwrap();
        let failure = explain_match_input_properties(&filtered, &unfiltered).unwrap_err();
        assert_eq!(failure, MatchFailure::MissingPartner { kind: "selection" });
        assert_eq!(failure.check_name(), "MatchProperties");
    }

    #[test]
    fn original_stream_matches_everything_with_same_origin() {
        let original = InputProperties::original("photons");
        assert!(match_input_properties(&original, &q1_props()));
        assert!(match_input_properties(&original, &q2_props()));
        assert!(match_input_properties(
            &original,
            &InputProperties::original("photons")
        ));
    }

    #[test]
    fn filtered_stream_cannot_serve_unfiltered_subscription() {
        let original = InputProperties::original("photons");
        assert!(!match_input_properties(&q1_props(), &original));
    }

    #[test]
    fn udf_matching_requires_identical_params() {
        let stream = InputProperties::new(
            "photons",
            vec![Operator::Udf {
                name: "deskew".into(),
                params: vec!["7".into()],
            }],
        )
        .unwrap();
        let same = stream.clone();
        assert!(match_input_properties(&stream, &same));
        let diff_params = InputProperties::new(
            "photons",
            vec![Operator::Udf {
                name: "deskew".into(),
                params: vec!["8".into()],
            }],
        )
        .unwrap();
        assert!(!match_input_properties(&stream, &diff_params));
        let diff_name = InputProperties::new(
            "photons",
            vec![Operator::Udf {
                name: "other".into(),
                params: vec!["7".into()],
            }],
        )
        .unwrap();
        assert!(!match_input_properties(&stream, &diff_name));
    }

    fn agg(window: WindowSpec, filter: ResultFilter) -> AggregationSpec {
        AggregationSpec {
            op: AggOp::Avg,
            element: p("en"),
            window,
            pre_selection: q1_selection(),
            result_filter: filter,
        }
    }

    fn q3_agg() -> AggregationSpec {
        agg(
            WindowSpec::diff(p("det_time"), d("20"), Some(d("10"))).unwrap(),
            ResultFilter::none(),
        )
    }

    fn q4_agg() -> AggregationSpec {
        agg(
            WindowSpec::diff(p("det_time"), d("60"), Some(d("40"))).unwrap(),
            ResultFilter::single(CompOp::Ge, d("1.3")),
        )
    }

    /// Figure 5: Query 4's windows are assembled from Query 3's.
    #[test]
    fn q4_reuses_q3_aggregates() {
        assert!(match_aggregations(&q3_agg(), &q4_agg()));
        assert!(!match_aggregations(&q4_agg(), &q3_agg()));
    }

    #[test]
    fn filtered_aggregate_only_serves_more_restrictive() {
        // Q4's output is filtered with $a >= 1.3. A new subscription with
        // the same windows and no filter cannot reuse it…
        let unfiltered = agg(q4_agg().window.clone(), ResultFilter::none());
        assert!(!match_aggregations(&q4_agg(), &unfiltered));
        // …but one with an equal or tighter filter can.
        let tighter = agg(
            q4_agg().window.clone(),
            ResultFilter::single(CompOp::Ge, d("1.5")),
        );
        assert!(match_aggregations(&q4_agg(), &tighter));
        assert!(match_aggregations(&q4_agg(), &q4_agg()));
    }

    #[test]
    fn filtered_aggregate_never_serves_coarser_windows() {
        // Q4's filter drops windows; composing coarser windows from the
        // surviving partials would be wrong, however restrictive the new
        // filter is.
        let coarser = agg(
            WindowSpec::diff(p("det_time"), d("120"), Some(d("40"))).unwrap(),
            ResultFilter::single(CompOp::Ge, d("2.0")),
        );
        assert!(!match_aggregations(&q4_agg(), &coarser));
    }

    #[test]
    fn filtered_avg_never_serves_sum_or_count() {
        // An avg filter thresholds a different quantity than a sum filter;
        // cross-operator reuse of a filtered stream is unsound.
        let mut sum_new = agg(
            q4_agg().window.clone(),
            ResultFilter::single(CompOp::Ge, d("99")),
        );
        sum_new.op = AggOp::Sum;
        assert!(!match_aggregations(&q4_agg(), &sum_new));
    }

    #[test]
    fn aggregation_requires_same_pre_selection() {
        let mut other = q4_agg();
        other.pre_selection = q2_selection();
        assert!(!match_aggregations(&q3_agg(), &other));
    }

    #[test]
    fn aggregation_requires_same_element() {
        let mut other = q4_agg();
        other.element = p("phc");
        assert!(!match_aggregations(&q3_agg(), &other));
    }

    #[test]
    fn avg_serves_sum_and_count() {
        let mut sum = q4_agg();
        sum.op = AggOp::Sum;
        sum.result_filter = ResultFilter::none();
        let mut reused = q3_agg();
        reused.op = AggOp::Avg;
        assert!(match_aggregations(&reused, &sum));
        let mut count = sum.clone();
        count.op = AggOp::Count;
        assert!(match_aggregations(&reused, &count));
        // sum does not serve avg (count partial missing).
        let mut avg_new = sum.clone();
        avg_new.op = AggOp::Avg;
        let mut sum_reused = reused.clone();
        sum_reused.op = AggOp::Sum;
        assert!(!match_aggregations(&sum_reused, &avg_new));
        // min never serves max.
        let mut min_reused = reused.clone();
        min_reused.op = AggOp::Min;
        let mut max_new = avg_new.clone();
        max_new.op = AggOp::Max;
        assert!(!match_aggregations(&min_reused, &max_new));
    }

    #[test]
    fn aggregate_streams_match_via_properties() {
        let stream =
            InputProperties::new("photons", vec![Operator::Aggregation(q3_agg())]).unwrap();
        let newq = InputProperties::new("photons", vec![Operator::Aggregation(q4_agg())]).unwrap();
        assert!(match_input_properties(&stream, &newq));
        assert!(!match_input_properties(&newq, &stream));
    }

    fn window_output(
        size: &str,
        step: Option<&str>,
        sel: PredicateGraph,
    ) -> crate::operator::WindowOutputSpec {
        crate::operator::WindowOutputSpec {
            window: WindowSpec::diff(p("det_time"), d(size), step.map(d)).unwrap(),
            pre_selection: sel,
        }
    }

    #[test]
    fn window_output_matching_mirrors_aggregates() {
        use crate::matching::match_window_output;
        let fine = window_output("20", Some("10"), q1_selection());
        let coarse = window_output("60", Some("40"), q1_selection());
        assert!(match_window_output(&fine, &coarse));
        assert!(!match_window_output(&coarse, &fine));
        // Different pre-selection (even a tighter one) blocks sharing.
        let other_sel = window_output("20", Some("10"), q2_selection());
        assert!(!match_window_output(&other_sel, &coarse));
        // Identical specs always match.
        assert!(match_window_output(&fine, &fine));
    }

    #[test]
    fn window_output_streams_match_via_properties() {
        let fine = InputProperties::new(
            "photons",
            vec![Operator::WindowOutput(window_output(
                "20",
                Some("10"),
                PredicateGraph::new(),
            ))],
        )
        .unwrap();
        let coarse = InputProperties::new(
            "photons",
            vec![Operator::WindowOutput(window_output(
                "60",
                Some("40"),
                PredicateGraph::new(),
            ))],
        )
        .unwrap();
        assert!(match_input_properties(&fine, &coarse));
        assert!(!match_input_properties(&coarse, &fine));
        // Residual: identical windowing needs nothing, coarser needs one op.
        assert!(residual_operators(&fine, &fine).is_empty());
        assert_eq!(residual_operators(&fine, &coarse).len(), 1);
    }

    #[test]
    fn widening_q2_stream_for_q1_yields_q1_stream() {
        // Q2's stream cannot serve Q1 (narrower region + energy cut), but
        // widening it produces exactly Q1's stream: the region hull is
        // Vela, the energy cut is unbounded in Q1, and Q2's outputs are a
        // subset of Q1's.
        let widened = widen_input(&q2_props(), &q1_props()).expect("widenable");
        assert!(match_input_properties(&widened, &q1_props()));
        assert!(match_input_properties(&widened, &q2_props()));
        assert_eq!(widened.selection(), q1_props().selection());
        assert_eq!(
            widened.projection().unwrap().output,
            q1_props().projection().unwrap().output
        );
    }

    #[test]
    fn widening_not_needed_when_sharing_applies() {
        // Q1's stream already serves Q2 — no widening necessary.
        assert!(widen_input(&q1_props(), &q2_props()).is_none());
    }

    #[test]
    fn widening_rejects_aggregates_and_foreign_streams() {
        let agg_stream =
            InputProperties::new("photons", vec![Operator::Aggregation(q3_agg())]).unwrap();
        assert!(widen_input(&agg_stream, &q1_props()).is_none());
        assert!(widen_input(&q1_props(), &agg_stream).is_none());
        let other = InputProperties::original("spectra");
        assert!(widen_input(&other, &q1_props()).is_none());
    }

    #[test]
    fn widening_disjoint_regions_takes_bounding_box() {
        let region = |ra_lo: &str, ra_hi: &str| {
            InputProperties::new(
                "photons",
                vec![
                    Operator::Selection(PredicateGraph::from_atoms(&[
                        Atom::var_const(p("coord/cel/ra"), CompOp::Ge, d(ra_lo)),
                        Atom::var_const(p("coord/cel/ra"), CompOp::Le, d(ra_hi)),
                    ])),
                    Operator::Projection(ProjectionSpec::returning([p("en")])),
                ],
            )
            .unwrap()
        };
        let a = region("100", "110");
        let b = region("150", "160");
        let w = widen_input(&a, &b).expect("widenable");
        assert!(match_input_properties(&w, &a));
        assert!(match_input_properties(&w, &b));
        let sel = w.selection().unwrap();
        assert!(sel.implies_atom(&Atom::var_const(p("coord/cel/ra"), CompOp::Ge, d("100"))));
        assert!(sel.implies_atom(&Atom::var_const(p("coord/cel/ra"), CompOp::Le, d("160"))));
    }

    #[test]
    fn residual_ops_from_original_is_full_chain() {
        let original = InputProperties::original("photons");
        let res = residual_operators(&original, &q2_props());
        assert_eq!(res.len(), q2_props().operators().len());
    }

    #[test]
    fn residual_ops_from_equal_stream_is_empty() {
        let res = residual_operators(&q1_props(), &q1_props());
        assert!(
            res.is_empty(),
            "identical stream needs no extra operators, got {res:?}"
        );
    }

    #[test]
    fn residual_ops_from_wider_stream_keeps_narrowing_ops() {
        let res = residual_operators(&q1_props(), &q2_props());
        // Q2 still needs its (tighter) selection and its projection applied
        // on top of Q1's stream.
        assert_eq!(res.len(), 2);
    }

    #[test]
    fn residual_ops_identical_aggregation_dropped() {
        let stream =
            InputProperties::new("photons", vec![Operator::Aggregation(q3_agg())]).unwrap();
        assert!(residual_operators(&stream, &stream).is_empty());
        let newq = InputProperties::new("photons", vec![Operator::Aggregation(q4_agg())]).unwrap();
        // Q4 over Q3's stream needs a re-aggregation operator.
        assert_eq!(residual_operators(&stream, &newq).len(), 1);
    }
}
