//! Properties of subscriptions and data streams (paper Section 3.1) and the
//! matching algorithms `MatchProperties` (Algorithm 2) and
//! `MatchAggregations` (Section 3.3).
//!
//! Subscriptions and data streams are represented *symmetrically*: a
//! subscription produces a result stream, and every stream is the result of
//! some subscription. Both are described by [`properties::Properties`]: per
//! original input data stream, a chain of [`operator::Operator`]s with their
//! conditions (selection predicate graphs, projection element sets, window
//! specifications, aggregation operators).
//!
//! Matching a new subscription's properties against the properties of a
//! stream already flowing in the network decides whether that stream can be
//! *shared* to answer the subscription.

pub mod matching;
pub mod operator;
pub mod properties;
pub mod summary;
pub mod window;

pub use matching::{
    explain_match_input_properties, match_aggregations, match_input_properties,
    match_window_output, residual_operators, widen_input, MatchFailure,
};
pub use operator::{
    AggOp, AggregationSpec, Operator, ProjectionSpec, ResultFilter, WindowOutputSpec,
};
pub use properties::{InputProperties, Properties, PropertiesError};
pub use summary::{ChainSummary, QueryLens, SigAtom, Signature, WindowKey};
pub use window::{WindowError, WindowKind, WindowSpec};
