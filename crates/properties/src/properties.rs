//! The properties data structure (Section 3.1).
//!
//! Subscriptions and data streams are treated symmetrically: both are
//! described by the same structure, recording — per original input data
//! stream — the chain of operators (with their conditions) that transforms
//! the input into the represented (result) stream. Properties serve two
//! purposes: they describe which parts of the input a subscription needs,
//! and they describe the contents of the stream produced for it.
//!
//! Restructuring details (the `return` clause's element construction) are
//! deliberately *not* part of properties: restructuring happens in a
//! post-processing step at the subscriber's super-peer and its output is
//! never considered for reuse.

use std::fmt;

use crate::operator::Operator;

/// Errors constructing properties.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PropertiesError {
    /// A selection predicate is unsatisfiable; the paper rejects such
    /// subscriptions at registration.
    UnsatisfiablePredicate { stream: String },
    /// A subscription referenced no input streams.
    NoInputs,
}

impl fmt::Display for PropertiesError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PropertiesError::UnsatisfiablePredicate { stream } => {
                write!(
                    f,
                    "unsatisfiable selection predicate on input stream {stream:?}"
                )
            }
            PropertiesError::NoInputs => write!(f, "subscription references no input streams"),
        }
    }
}

impl std::error::Error for PropertiesError {}

/// Properties of one input data stream: how the represented stream was
/// derived from it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InputProperties {
    stream: String,
    operators: Vec<Operator>,
}

impl InputProperties {
    /// Builds and normalizes the per-input properties: selection predicates
    /// are checked for satisfiability (unsatisfiable ⇒ error, the
    /// subscription can be rejected) and minimized. This normalization runs
    /// once per subscription at registration time, as in the paper.
    pub fn new(
        stream: impl Into<String>,
        operators: Vec<Operator>,
    ) -> Result<InputProperties, PropertiesError> {
        let stream = stream.into();
        let mut normalized = Vec::with_capacity(operators.len());
        for op in operators {
            normalized.push(match op {
                Operator::Selection(g) => {
                    if !g.is_satisfiable() {
                        return Err(PropertiesError::UnsatisfiablePredicate { stream });
                    }
                    Operator::Selection(g.minimize())
                }
                Operator::Aggregation(mut a) => {
                    if !a.pre_selection.is_satisfiable() {
                        return Err(PropertiesError::UnsatisfiablePredicate { stream });
                    }
                    a.pre_selection = a.pre_selection.minimize();
                    Operator::Aggregation(a)
                }
                Operator::WindowOutput(mut w) => {
                    if !w.pre_selection.is_satisfiable() {
                        return Err(PropertiesError::UnsatisfiablePredicate { stream });
                    }
                    w.pre_selection = w.pre_selection.minimize();
                    Operator::WindowOutput(w)
                }
                other => other,
            });
        }
        Ok(InputProperties {
            stream,
            operators: normalized,
        })
    }

    /// Properties of an original, untransformed input stream.
    pub fn original(stream: impl Into<String>) -> InputProperties {
        InputProperties {
            stream: stream.into(),
            operators: Vec::new(),
        }
    }

    /// Name of the original input data stream (`getDS`).
    pub fn stream(&self) -> &str {
        &self.stream
    }

    /// The operator chain (`getOps`).
    pub fn operators(&self) -> &[Operator] {
        &self.operators
    }

    /// `true` if no operators were applied (the original stream).
    pub fn is_original(&self) -> bool {
        self.operators.is_empty()
    }

    /// First selection operator's predicate graph, if any.
    pub fn selection(&self) -> Option<&dss_predicate::PredicateGraph> {
        self.operators.iter().find_map(|o| match o {
            Operator::Selection(g) => Some(g),
            _ => None,
        })
    }

    /// First projection operator's spec, if any.
    pub fn projection(&self) -> Option<&crate::operator::ProjectionSpec> {
        self.operators.iter().find_map(|o| match o {
            Operator::Projection(p) => Some(p),
            _ => None,
        })
    }

    /// First aggregation operator's spec, if any.
    pub fn aggregation(&self) -> Option<&crate::operator::AggregationSpec> {
        self.operators.iter().find_map(|o| match o {
            Operator::Aggregation(a) => Some(a),
            _ => None,
        })
    }

    /// `true` if both properties are *variants* of the same original input
    /// stream — the precondition for even attempting a match.
    pub fn same_origin(&self, other: &InputProperties) -> bool {
        self.stream == other.stream
    }
}

impl fmt::Display for InputProperties {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.stream)?;
        for op in &self.operators {
            write!(f, " → {op}")?;
        }
        Ok(())
    }
}

/// Properties of a subscription or data stream: one entry per original
/// input data stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Properties {
    inputs: Vec<InputProperties>,
}

impl Properties {
    /// Builds properties over one or more inputs.
    pub fn new(inputs: Vec<InputProperties>) -> Result<Properties, PropertiesError> {
        if inputs.is_empty() {
            return Err(PropertiesError::NoInputs);
        }
        Ok(Properties { inputs })
    }

    /// Single-input properties (the common case; all streams produced for
    /// reuse are single-input — stream combinations happen in
    /// post-processing and are not shared).
    pub fn single(input: InputProperties) -> Properties {
        Properties {
            inputs: vec![input],
        }
    }

    /// Properties of an original registered stream.
    pub fn original(stream: impl Into<String>) -> Properties {
        Properties::single(InputProperties::original(stream))
    }

    /// Per-input properties (`getInputDS`).
    pub fn inputs(&self) -> &[InputProperties] {
        &self.inputs
    }

    /// The single input, if there is exactly one.
    pub fn as_single(&self) -> Option<&InputProperties> {
        match self.inputs.as_slice() {
            [one] => Some(one),
            _ => None,
        }
    }

    /// The input entry for a given original stream name.
    pub fn input_for(&self, stream: &str) -> Option<&InputProperties> {
        self.inputs.iter().find(|i| i.stream() == stream)
    }

    /// `true` if every input is the untransformed original stream.
    pub fn is_original(&self) -> bool {
        self.inputs.iter().all(InputProperties::is_original)
    }
}

impl fmt::Display for Properties {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for i in &self.inputs {
            if !first {
                write!(f, " ⊕ ")?;
            }
            first = false;
            write!(f, "[{i}]")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operator::ProjectionSpec;
    use dss_predicate::{Atom, CompOp, PredicateGraph};
    use dss_xml::{Decimal, Path};

    fn p(s: &str) -> Path {
        s.parse().unwrap()
    }

    fn d(s: &str) -> Decimal {
        s.parse().unwrap()
    }

    #[test]
    fn construction_normalizes_selection() {
        let g = PredicateGraph::from_atoms(&[
            Atom::var_const(p("en"), CompOp::Ge, d("1.3")),
            Atom::var_const(p("en"), CompOp::Ge, d("1.0")), // redundant
        ]);
        let ip = InputProperties::new("photons", vec![Operator::Selection(g)]).unwrap();
        match &ip.operators()[0] {
            Operator::Selection(g) => assert_eq!(g.edge_count(), 1),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn unsatisfiable_selection_rejected() {
        let g = PredicateGraph::from_atoms(&[
            Atom::var_const(p("en"), CompOp::Ge, d("2")),
            Atom::var_const(p("en"), CompOp::Le, d("1")),
        ]);
        let err = InputProperties::new("photons", vec![Operator::Selection(g)]).unwrap_err();
        assert_eq!(
            err,
            PropertiesError::UnsatisfiablePredicate {
                stream: "photons".into()
            }
        );
    }

    #[test]
    fn accessors() {
        let sel = PredicateGraph::from_atoms(&[Atom::var_const(p("en"), CompOp::Ge, d("1.3"))]);
        let proj = ProjectionSpec::returning([p("en")]);
        let ip = InputProperties::new(
            "photons",
            vec![
                Operator::Selection(sel.clone()),
                Operator::Projection(proj.clone()),
            ],
        )
        .unwrap();
        assert_eq!(ip.stream(), "photons");
        assert!(ip.selection().is_some());
        assert_eq!(ip.projection(), Some(&proj));
        assert!(ip.aggregation().is_none());
        assert!(!ip.is_original());
        assert!(InputProperties::original("photons").is_original());
    }

    #[test]
    fn same_origin() {
        let a = InputProperties::original("photons");
        let b = InputProperties::original("photons");
        let c = InputProperties::original("spectra");
        assert!(a.same_origin(&b));
        assert!(!a.same_origin(&c));
    }

    #[test]
    fn properties_container() {
        let props = Properties::original("photons");
        assert!(props.is_original());
        assert!(props.as_single().is_some());
        assert!(props.input_for("photons").is_some());
        assert!(props.input_for("other").is_none());
        assert!(Properties::new(vec![]).is_err());
    }

    #[test]
    fn display() {
        let props = Properties::original("photons");
        assert_eq!(props.to_string(), "[photons]");
    }
}
