//! Operators and their conditions, as recorded in stream/subscription
//! properties (Section 3.1).

use std::collections::BTreeSet;
use std::fmt;

use dss_predicate::{Atom, CompOp, PredicateGraph};
use dss_xml::{Decimal, Path};

use crate::window::WindowSpec;

/// Window-based aggregation operator `Φ ∈ {min, max, sum, count, avg}`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AggOp {
    Min,
    Max,
    Sum,
    Count,
    Avg,
}

impl AggOp {
    /// Classification per the paper: distributive aggregates can be merged
    /// from partials directly; algebraic ones (avg) via a fixed-size
    /// intermediate (sum, count).
    pub fn is_distributive(self) -> bool {
        !matches!(self, AggOp::Avg)
    }

    /// Parses the WXQuery spelling.
    pub fn parse(s: &str) -> Option<AggOp> {
        match s {
            "min" => Some(AggOp::Min),
            "max" => Some(AggOp::Max),
            "sum" => Some(AggOp::Sum),
            "count" => Some(AggOp::Count),
            "avg" => Some(AggOp::Avg),
            _ => None,
        }
    }
}

impl fmt::Display for AggOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AggOp::Min => "min",
            AggOp::Max => "max",
            AggOp::Sum => "sum",
            AggOp::Count => "count",
            AggOp::Avg => "avg",
        };
        write!(f, "{s}")
    }
}

/// Projection conditions: which elements the produced stream *returns*
/// (marked with bullets in the paper's Figure 3) and which elements the
/// query *references* at all (marked or unmarked).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ProjectionSpec {
    /// Elements present in the result stream (`getOutElems`).
    pub output: BTreeSet<Path>,
    /// All elements the query needs from the input (`getRefElems`); always a
    /// superset of `output`.
    pub referenced: BTreeSet<Path>,
}

impl ProjectionSpec {
    /// Builds a projection whose referenced set defaults to the output set.
    pub fn returning<I: IntoIterator<Item = Path>>(output: I) -> ProjectionSpec {
        let output: BTreeSet<Path> = output.into_iter().collect();
        ProjectionSpec {
            referenced: output.clone(),
            output,
        }
    }

    /// Extends the referenced set (e.g. with predicate variables that are
    /// read but not returned).
    pub fn with_referenced<I: IntoIterator<Item = Path>>(mut self, extra: I) -> ProjectionSpec {
        self.referenced.extend(extra);
        self
    }

    /// `true` if `path` (or an ancestor of it) is in the output set — the
    /// produced stream contains the complete subtree holding `path`.
    pub fn outputs_path(&self, path: &Path) -> bool {
        self.output.iter().any(|out| out.is_prefix_of(path))
    }

    /// The paper's projection-matching condition `R ⊇ R'`: every element
    /// referenced by the new subscription is available (as a complete
    /// subtree) in this projection's output.
    pub fn covers(&self, new: &ProjectionSpec) -> bool {
        new.referenced.iter().all(|r| self.outputs_path(r))
    }
}

impl fmt::Display for ProjectionSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "π{{")?;
        let mut first = true;
        for path in &self.referenced {
            if !first {
                write!(f, ", ")?;
            }
            first = false;
            write!(f, "{path}")?;
            if self.output.contains(path) {
                write!(f, "•")?;
            }
        }
        write!(f, "}}")
    }
}

/// A filter applied to an aggregation *result* (`where $a ≥ 1.3` in
/// Query 4): a conjunction of atomic comparisons against constants.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ResultFilter {
    /// `(θ, c)` pairs, each asserting `$a θ c`.
    pub conditions: Vec<(CompOp, Decimal)>,
}

impl ResultFilter {
    /// The empty (always-true) filter.
    pub fn none() -> ResultFilter {
        ResultFilter::default()
    }

    /// A single-condition filter.
    pub fn single(op: CompOp, c: Decimal) -> ResultFilter {
        ResultFilter {
            conditions: vec![(op, c)],
        }
    }

    /// `true` if no condition is present.
    pub fn is_trivial(&self) -> bool {
        self.conditions.is_empty()
    }

    /// Evaluates the filter against an aggregate value.
    pub fn accepts(&self, value: Decimal) -> bool {
        self.conditions.iter().all(|(op, c)| op.evaluate(value, *c))
    }

    /// Number of *distinct* conditions after predicate-graph minimization:
    /// duplicated or implied bounds collapse, so `$a ≥ 1 and $a ≥ 2`
    /// counts as one condition. Capped at the literal count (an equality
    /// asserts two directed bounds but is still one condition); an
    /// unsatisfiable filter keeps its literal count.
    pub fn distinct_condition_count(&self) -> usize {
        if self.conditions.len() <= 1 {
            return self.conditions.len();
        }
        self.to_graph()
            .minimize()
            .edge_count()
            .min(self.conditions.len())
    }

    fn to_graph(&self) -> PredicateGraph {
        let var: Path = "agg_result".parse().expect("valid synthetic name");
        PredicateGraph::from_atoms(
            &self
                .conditions
                .iter()
                .map(|(op, c)| Atom::var_const(var.clone(), *op, *c))
                .collect::<Vec<_>>(),
        )
    }

    /// `true` if this filter is at least as restrictive as `other` (every
    /// value it accepts is accepted by `other`). This is the condition for
    /// reusing a *filtered* aggregate stream: the new subscription must
    /// apply "the same or a more restrictive filter".
    pub fn at_least_as_restrictive_as(&self, other: &ResultFilter) -> bool {
        dss_predicate::match_predicates(&other.to_graph(), &self.to_graph())
    }
}

impl fmt::Display for ResultFilter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.conditions.is_empty() {
            return write!(f, "true");
        }
        let mut first = true;
        for (op, c) in &self.conditions {
            if !first {
                write!(f, " and ")?;
            }
            first = false;
            write!(f, "$a {op} {c}")?;
        }
        Ok(())
    }
}

/// Conditions of a window-based aggregation operator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AggregationSpec {
    /// The aggregation operator Φ.
    pub op: AggOp,
    /// The aggregated element (identifier of the element whose values are
    /// aggregated), relative to the stream item root.
    pub element: Path,
    /// The data window.
    pub window: WindowSpec,
    /// Selection applied to the stream *before* aggregation. For sharing,
    /// the paper requires this to be **the same** in both subscriptions
    /// (implication is not enough once values are folded into aggregates).
    pub pre_selection: PredicateGraph,
    /// Filter applied to the aggregation result (Query 4's `$a ≥ 1.3`).
    pub result_filter: ResultFilter,
}

impl fmt::Display for AggregationSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}({}) over {}", self.op, self.element, self.window)?;
        if !self.result_filter.is_trivial() {
            write!(f, " having {}", self.result_filter)?;
        }
        Ok(())
    }
}

/// Conditions of a window-contents operator: the query returns the raw
/// contents of each data window (the cost model's third result class,
/// "queries returning the contents of data windows").
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WindowOutputSpec {
    /// The data window.
    pub window: WindowSpec,
    /// Selection applied to the stream *before* windowing. Like
    /// aggregation pre-selections, this must be identical for sharing —
    /// items missing from a window cannot be recovered downstream.
    pub pre_selection: PredicateGraph,
}

impl fmt::Display for WindowOutputSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "window-contents over {}", self.window)
    }
}

/// An operator entry in a properties structure, with its conditions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Operator {
    /// Selection σ with a predicate graph.
    Selection(PredicateGraph),
    /// Projection Π.
    Projection(ProjectionSpec),
    /// Window-based aggregation Φ.
    Aggregation(AggregationSpec),
    /// Window-contents output (windowed item sequences).
    WindowOutput(WindowOutputSpec),
    /// An unknown, user-defined operator. Assumed deterministic; shareable
    /// only with identical input vector (parameter list).
    Udf { name: String, params: Vec<String> },
}

impl Operator {
    /// Short operator-kind tag used when pairing operators in Algorithm 2
    /// (its `o = o'` comparison is on the operator kind; conditions are
    /// compared separately).
    pub fn kind(&self) -> OperatorKind {
        match self {
            Operator::Selection(_) => OperatorKind::Selection,
            Operator::Projection(_) => OperatorKind::Projection,
            Operator::Aggregation(_) => OperatorKind::Aggregation,
            Operator::WindowOutput(_) => OperatorKind::WindowOutput,
            Operator::Udf { name, .. } => OperatorKind::Udf(name.clone()),
        }
    }
}

/// Operator kind for pairing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OperatorKind {
    Selection,
    Projection,
    Aggregation,
    WindowOutput,
    Udf(String),
}

impl fmt::Display for Operator {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operator::Selection(g) => write!(f, "σ[{g}]"),
            Operator::Projection(p) => write!(f, "{p}"),
            Operator::Aggregation(a) => write!(f, "Φ[{a}]"),
            Operator::WindowOutput(w) => write!(f, "ω[{w}]"),
            Operator::Udf { name, params } => write!(f, "udf:{name}({})", params.join(", ")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> Path {
        s.parse().unwrap()
    }

    fn d(s: &str) -> Decimal {
        s.parse().unwrap()
    }

    #[test]
    fn agg_op_parse_display() {
        for (s, op) in [
            ("min", AggOp::Min),
            ("max", AggOp::Max),
            ("sum", AggOp::Sum),
            ("count", AggOp::Count),
            ("avg", AggOp::Avg),
        ] {
            assert_eq!(AggOp::parse(s), Some(op));
            assert_eq!(op.to_string(), s);
        }
        assert_eq!(AggOp::parse("median"), None);
        assert!(AggOp::Sum.is_distributive());
        assert!(!AggOp::Avg.is_distributive());
    }

    #[test]
    fn projection_covers_exact() {
        // Q1 returns ra, dec, phc, en, det_time.
        let q1 = ProjectionSpec::returning([
            p("coord/cel/ra"),
            p("coord/cel/dec"),
            p("phc"),
            p("en"),
            p("det_time"),
        ]);
        // Q2 references ra, dec, en, det_time.
        let q2 = ProjectionSpec::returning([
            p("coord/cel/ra"),
            p("coord/cel/dec"),
            p("en"),
            p("det_time"),
        ]);
        assert!(q1.covers(&q2));
        assert!(!q2.covers(&q1)); // q1 also needs phc
    }

    #[test]
    fn projection_covers_via_subtree_prefix() {
        let whole_coord = ProjectionSpec::returning([p("coord"), p("en")]);
        let needs_ra = ProjectionSpec::returning([p("coord/cel/ra")]);
        assert!(whole_coord.covers(&needs_ra));
        // The reverse fails: ra alone does not provide all of coord.
        assert!(!needs_ra.covers(&whole_coord));
    }

    #[test]
    fn projection_referenced_vs_output() {
        // A query returning only `en` but *filtering* on ra references both.
        let q = ProjectionSpec::returning([p("en")]).with_referenced([p("coord/cel/ra")]);
        let narrow_stream = ProjectionSpec::returning([p("en")]);
        assert!(
            !narrow_stream.covers(&q),
            "stream lacks ra, which q's predicate reads"
        );
        let wide_stream = ProjectionSpec::returning([p("en"), p("coord/cel/ra")]);
        assert!(wide_stream.covers(&q));
    }

    #[test]
    fn result_filter_accepts() {
        let f = ResultFilter::single(CompOp::Ge, d("1.3"));
        assert!(f.accepts(d("1.3")));
        assert!(!f.accepts(d("1.2")));
        assert!(ResultFilter::none().accepts(d("-100")));
    }

    #[test]
    fn result_filter_restrictiveness() {
        let ge13 = ResultFilter::single(CompOp::Ge, d("1.3"));
        let ge15 = ResultFilter::single(CompOp::Ge, d("1.5"));
        let none = ResultFilter::none();
        assert!(ge15.at_least_as_restrictive_as(&ge13));
        assert!(!ge13.at_least_as_restrictive_as(&ge15));
        assert!(ge13.at_least_as_restrictive_as(&ge13));
        assert!(ge13.at_least_as_restrictive_as(&none));
        assert!(!none.at_least_as_restrictive_as(&ge13));
    }

    #[test]
    fn operator_kinds() {
        let sel = Operator::Selection(PredicateGraph::new());
        let proj = Operator::Projection(ProjectionSpec::default());
        assert_eq!(sel.kind(), OperatorKind::Selection);
        assert_ne!(sel.kind(), proj.kind());
        let u1 = Operator::Udf {
            name: "deskew".into(),
            params: vec!["a".into()],
        };
        let u2 = Operator::Udf {
            name: "other".into(),
            params: vec!["a".into()],
        };
        assert_ne!(u1.kind(), u2.kind());
    }

    #[test]
    fn displays() {
        let proj = ProjectionSpec::returning([p("en")]).with_referenced([p("phc")]);
        assert_eq!(proj.to_string(), "π{en•, phc}");
        let f = ResultFilter::single(CompOp::Ge, d("1.3"));
        assert_eq!(f.to_string(), "$a >= 1.3");
    }
}
