//! Compact chain summaries for indexed candidate lookup.
//!
//! The plan search (Algorithm 1) asks, at every visited peer, "which of the
//! streams passing here could serve this subscription input?" Answering
//! with `match_input_properties` per installed stream is a full scan. This
//! module extracts, from a chain's properties, the cheap *necessary*
//! conditions of a match so a catalog can bucket streams by them and only
//! run the full match on plausible covers:
//!
//! * [`Signature`] — the set of operator kinds in the chain. A stream
//!   matches only if every one of its operator kinds also occurs in the
//!   subscription chain (each stream operator needs a same-kind partner).
//! * selection bounds — every edge of the stream's (minimized) selection
//!   graph must be implied by the subscription's selection closure
//!   (`MatchPredicates` is sound *and complete*, so this is a necessary
//!   condition whenever the subscription has exactly one selection).
//! * [`WindowKey`] — aggregation/window-contents sharing requires the
//!   reused window's kind and reference element to equal the new one's and
//!   its size Δ to divide (hence not exceed) the new Δ, which makes window
//!   sizes orderable: candidates live in a sorted structure and a
//!   subscription probes the prefix up to its own Δ.
//!
//! Everything here errs on the side of *keeping* a candidate: the full
//! `match_input_properties` remains the authority, so pruning can never
//! change which streams match — only how many non-matches are inspected.

use std::fmt;

use dss_predicate::{Bound, NodeRef, PredicateGraph};
use dss_xml::{Decimal, Path};

use crate::operator::{AggOp, Operator};
use crate::properties::InputProperties;
use crate::window::{WindowKind, WindowSpec};

/// One element of a [`Signature`]: an operator kind, made orderable and
/// hashable (unlike [`crate::OperatorKind`], which carries no `Ord`).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SigAtom {
    Selection,
    Projection,
    Aggregation,
    WindowOutput,
    Udf(String),
}

impl SigAtom {
    fn of(op: &Operator) -> SigAtom {
        match op {
            Operator::Selection(_) => SigAtom::Selection,
            Operator::Projection(_) => SigAtom::Projection,
            Operator::Aggregation(_) => SigAtom::Aggregation,
            Operator::WindowOutput(_) => SigAtom::WindowOutput,
            Operator::Udf { name, .. } => SigAtom::Udf(name.clone()),
        }
    }
}

/// The sorted, deduplicated set of operator kinds in a chain. Used as the
/// catalog's hash key: a candidate stream can only match a subscription
/// whose signature is a superset of the stream's.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Signature(Vec<SigAtom>);

impl Signature {
    /// Signature of an operator chain.
    pub fn of(chain: &[Operator]) -> Signature {
        let mut atoms: Vec<SigAtom> = chain.iter().map(SigAtom::of).collect();
        atoms.sort();
        atoms.dedup();
        Signature(atoms)
    }

    /// `true` if every kind in `self` also occurs in `other` (merge walk
    /// over the two sorted sets).
    pub fn is_subset_of(&self, other: &Signature) -> bool {
        let mut it = other.0.iter();
        'outer: for a in &self.0 {
            for b in it.by_ref() {
                match b.cmp(a) {
                    std::cmp::Ordering::Less => continue,
                    std::cmp::Ordering::Equal => continue 'outer,
                    std::cmp::Ordering::Greater => return false,
                }
            }
            return false;
        }
        true
    }

    /// `true` when the chain consists of selection/projection operators
    /// only (including the empty chain) — the shape
    /// [`crate::widen_input`] can loosen in place, so only such streams
    /// are candidates for widening.
    pub fn is_widenable(&self) -> bool {
        self.0
            .iter()
            .all(|a| matches!(a, SigAtom::Selection | SigAtom::Projection))
    }

    /// Number of distinct kinds.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// `true` for the empty (original-stream) signature.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

impl fmt::Display for Signature {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, a) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            match a {
                SigAtom::Selection => write!(f, "σ")?,
                SigAtom::Projection => write!(f, "π")?,
                SigAtom::Aggregation => write!(f, "Φ")?,
                SigAtom::WindowOutput => write!(f, "ω")?,
                SigAtom::Udf(n) => write!(f, "udf:{n}")?,
            }
        }
        write!(f, "}}")
    }
}

/// Which sharing rule a window participates in: aggregation results and
/// window-contents streams never serve each other, so their keys live in
/// disjoint key ranges.
const CLASS_AGG: u8 = 0;
const CLASS_WINDOW_OUTPUT: u8 = 1;

fn kind_tag(kind: WindowKind) -> u8 {
    match kind {
        WindowKind::Count => 0,
        WindowKind::Diff => 1,
    }
}

/// Ordered key placing a stream's window in the factor-multiple lattice:
/// `(class, kind, reference, Δ)`. Sharing requires equal class, kind, and
/// reference, plus `Δ' mod Δ = 0` — so every stream a subscription with
/// window size Δ' could reuse sits in the contiguous key range
/// `(class, kind, ref, 0) ..= (class, kind, ref, Δ')`.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct WindowKey {
    class: u8,
    kind: u8,
    reference: Option<Path>,
    size: Decimal,
}

impl WindowKey {
    /// Key of an aggregation window.
    pub fn aggregation(w: &WindowSpec) -> WindowKey {
        WindowKey::new(CLASS_AGG, w)
    }

    /// Key of a window-contents window.
    pub fn window_output(w: &WindowSpec) -> WindowKey {
        WindowKey::new(CLASS_WINDOW_OUTPUT, w)
    }

    fn new(class: u8, w: &WindowSpec) -> WindowKey {
        WindowKey {
            class,
            kind: kind_tag(w.kind()),
            reference: w.reference().cloned(),
            size: w.size(),
        }
    }

    fn floor_of(&self) -> WindowKey {
        WindowKey {
            size: Decimal::ZERO,
            ..self.clone()
        }
    }
}

/// The per-aggregation facts a pre-filter can check without predicate
/// graphs: operator, aggregated element, window, and whether the result
/// stream was filtered (filtered aggregates only serve identical windows).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AggSummary {
    pub op: AggOp,
    pub element: Path,
    pub window: WindowSpec,
    pub filtered: bool,
}

fn ops_compatible(reused: AggOp, new: AggOp) -> bool {
    reused == new || (reused == AggOp::Avg && matches!(new, AggOp::Sum | AggOp::Count))
}

impl AggSummary {
    /// Necessary conditions of `match_aggregations(self, new)`, skipping
    /// the predicate-graph checks (pre-selection equality, filter
    /// restrictiveness) that the authoritative match re-verifies.
    fn plausibly_serves(&self, new: &AggSummary) -> bool {
        if !ops_compatible(self.op, new.op) || self.element != new.element {
            return false;
        }
        if self.filtered {
            // Filtered aggregates: windows must be identical and the filter
            // comparison only makes sense on equal operators.
            self.op == new.op && self.window == new.window
        } else {
            new.window.shareable_from(&self.window)
        }
    }
}

/// Pre-computed summary of one chain (one `InputProperties`), stored by the
/// catalog per indexed stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChainSummary {
    signature: Signature,
    /// Direct edges of the chain's *first* selection graph (minimized at
    /// construction). A match requires the subscription's selection closure
    /// to imply every one of them.
    sel_edges: Vec<(NodeRef, NodeRef, Bound)>,
    aggs: Vec<AggSummary>,
    window_outputs: Vec<WindowSpec>,
}

impl ChainSummary {
    /// Summarizes a chain's properties.
    pub fn of(props: &InputProperties) -> ChainSummary {
        let mut aggs = Vec::new();
        let mut window_outputs = Vec::new();
        for op in props.operators() {
            match op {
                Operator::Aggregation(a) => aggs.push(AggSummary {
                    op: a.op,
                    element: a.element.clone(),
                    window: a.window.clone(),
                    filtered: !a.result_filter.is_trivial(),
                }),
                Operator::WindowOutput(w) => window_outputs.push(w.window.clone()),
                _ => {}
            }
        }
        let sel_edges = props
            .selection()
            .map(|g| {
                g.edges()
                    .map(|(u, v, b)| (u.clone(), v.clone(), b))
                    .collect()
            })
            .unwrap_or_default();
        ChainSummary {
            signature: Signature::of(props.operators()),
            sel_edges,
            aggs,
            window_outputs,
        }
    }

    /// The chain's operator-kind signature.
    pub fn signature(&self) -> &Signature {
        &self.signature
    }

    /// The key under which this chain is filed in the window lattice: its
    /// first aggregation window, else its first window-contents window,
    /// else `None` (the chain folds no windows and is not size-prunable).
    pub fn window_key(&self) -> Option<WindowKey> {
        if let Some(a) = self.aggs.first() {
            return Some(WindowKey::aggregation(&a.window));
        }
        self.window_outputs.first().map(WindowKey::window_output)
    }
}

/// A subscription input, pre-digested for probing the catalog: built once
/// per `Subscribe` input, checked against many candidate summaries.
#[derive(Debug, Clone)]
pub struct QueryLens {
    kinds: Signature,
    /// Transitive closure of the subscription's selection — only when the
    /// chain has *exactly one* selection (with several, a stream selection
    /// may match any of them) and the closure is satisfiable (an
    /// unsatisfiable one implies everything). `None` disables the bound
    /// pre-filter; candidates are kept.
    sel_closure: Option<PredicateGraph>,
    aggs: Vec<AggSummary>,
    window_outputs: Vec<WindowSpec>,
    /// Inclusive key ranges covering every window a candidate could ask
    /// this subscription to compose: per distinct (class, kind, reference)
    /// among the subscription's windows, sizes `0 ..= Δ'`.
    window_ranges: Vec<(WindowKey, WindowKey)>,
}

impl QueryLens {
    /// Digests a subscription input.
    pub fn of(props: &InputProperties) -> QueryLens {
        let mut selections = props.operators().iter().filter_map(|o| match o {
            Operator::Selection(g) => Some(g),
            _ => None,
        });
        let sel_closure = match (selections.next(), selections.next()) {
            (Some(g), None) => {
                let closure = g.closure();
                let unsat = closure
                    .edges()
                    .any(|(u, v, b)| u == v && b.cycle_is_infeasible());
                (!unsat).then_some(closure)
            }
            _ => None,
        };
        let mut aggs = Vec::new();
        let mut window_outputs = Vec::new();
        for op in props.operators() {
            match op {
                Operator::Aggregation(a) => aggs.push(AggSummary {
                    op: a.op,
                    element: a.element.clone(),
                    window: a.window.clone(),
                    filtered: !a.result_filter.is_trivial(),
                }),
                Operator::WindowOutput(w) => window_outputs.push(w.window.clone()),
                _ => {}
            }
        }
        let mut ceilings: Vec<WindowKey> = aggs
            .iter()
            .map(|a| WindowKey::aggregation(&a.window))
            .chain(window_outputs.iter().map(WindowKey::window_output))
            .collect();
        ceilings.sort();
        // Keep only the largest Δ' per (class, kind, reference): later keys
        // with the same prefix subsume earlier ones.
        ceilings.dedup_by(|next, prev| {
            prev.class == next.class && prev.kind == next.kind && prev.reference == next.reference
        });
        let window_ranges = ceilings.into_iter().map(|hi| (hi.floor_of(), hi)).collect();
        QueryLens {
            kinds: Signature::of(props.operators()),
            sel_closure,
            aggs,
            window_outputs,
            window_ranges,
        }
    }

    /// The subscription chain's operator-kind signature.
    pub fn kinds(&self) -> &Signature {
        &self.kinds
    }

    /// Inclusive [`WindowKey`] ranges a matching windowed candidate must
    /// fall in; empty when the subscription folds no windows.
    pub fn window_ranges(&self) -> &[(WindowKey, WindowKey)] {
        &self.window_ranges
    }

    /// Fast necessary conditions of
    /// `match_input_properties(candidate, self)`: `false` means the full
    /// match *cannot* succeed; `true` means it might and must be run.
    pub fn may_be_served_by(&self, candidate: &ChainSummary) -> bool {
        if !candidate.signature.is_subset_of(&self.kinds) {
            return false;
        }
        if let Some(closure) = &self.sel_closure {
            // MatchPredicates is complete: the single query selection must
            // imply every edge of the stream's first selection graph.
            let implied = candidate.sel_edges.iter().all(|(u, v, want)| {
                closure
                    .direct_bound(u, v)
                    .is_some_and(|have| have.implies(*want))
            });
            if !implied {
                return false;
            }
        }
        for cand_agg in &candidate.aggs {
            if !self.aggs.iter().any(|a| cand_agg.plausibly_serves(a)) {
                return false;
            }
        }
        for cand_w in &candidate.window_outputs {
            if !self.window_outputs.iter().any(|w| w.shareable_from(cand_w)) {
                return false;
            }
        }
        true
    }

    /// `true` if `key` falls inside one of [`Self::window_ranges`] — the
    /// catalog-range counterpart of [`Self::may_be_served_by`].
    pub fn admits_window_key(&self, key: &WindowKey) -> bool {
        self.window_ranges
            .iter()
            .any(|(lo, hi)| lo <= key && key <= hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matching::match_input_properties;
    use crate::operator::{AggregationSpec, ProjectionSpec, ResultFilter, WindowOutputSpec};
    use dss_predicate::{Atom, CompOp};

    fn p(s: &str) -> Path {
        s.parse().unwrap()
    }

    fn d(s: &str) -> Decimal {
        s.parse().unwrap()
    }

    fn region(ra: (&str, &str), dec: (&str, &str), en: Option<&str>) -> PredicateGraph {
        let mut atoms = vec![
            Atom::var_const(p("coord/cel/ra"), CompOp::Ge, d(ra.0)),
            Atom::var_const(p("coord/cel/ra"), CompOp::Le, d(ra.1)),
            Atom::var_const(p("coord/cel/dec"), CompOp::Ge, d(dec.0)),
            Atom::var_const(p("coord/cel/dec"), CompOp::Le, d(dec.1)),
        ];
        if let Some(cut) = en {
            atoms.push(Atom::var_const(p("en"), CompOp::Ge, d(cut)));
        }
        PredicateGraph::from_atoms(&atoms)
    }

    fn sel_props(sel: PredicateGraph, outputs: &[&str]) -> InputProperties {
        InputProperties::new(
            "photons",
            vec![
                Operator::Selection(sel),
                Operator::Projection(ProjectionSpec::returning(
                    outputs.iter().map(|s| p(s)).collect::<Vec<_>>(),
                )),
            ],
        )
        .unwrap()
    }

    fn agg_props(op: AggOp, size: &str, step: &str, filter: ResultFilter) -> InputProperties {
        InputProperties::new(
            "photons",
            vec![Operator::Aggregation(AggregationSpec {
                op,
                element: p("en"),
                window: WindowSpec::diff(p("det_time"), d(size), Some(d(step))).unwrap(),
                pre_selection: region(("120", "138"), ("-49", "-40"), None),
                result_filter: filter,
            })],
        )
        .unwrap()
    }

    fn wout_props(size: &str, step: &str) -> InputProperties {
        InputProperties::new(
            "photons",
            vec![Operator::WindowOutput(WindowOutputSpec {
                window: WindowSpec::diff(p("det_time"), d(size), Some(d(step))).unwrap(),
                pre_selection: PredicateGraph::new(),
            })],
        )
        .unwrap()
    }

    fn fixtures() -> Vec<InputProperties> {
        vec![
            InputProperties::original("photons"),
            sel_props(
                region(("120", "138"), ("-49", "-40"), None),
                &["coord/cel/ra", "coord/cel/dec", "phc", "en", "det_time"],
            ),
            sel_props(
                region(("130.5", "135.5"), ("-48", "-45"), Some("1.3")),
                &["coord/cel/ra", "coord/cel/dec", "en", "det_time"],
            ),
            sel_props(region(("10", "20"), ("0", "5"), None), &["en"]),
            agg_props(AggOp::Avg, "20", "10", ResultFilter::none()),
            agg_props(
                AggOp::Avg,
                "60",
                "40",
                ResultFilter::single(CompOp::Ge, d("1.3")),
            ),
            agg_props(AggOp::Sum, "60", "40", ResultFilter::none()),
            agg_props(AggOp::Count, "120", "40", ResultFilter::none()),
            wout_props("20", "10"),
            wout_props("60", "40"),
            InputProperties::new(
                "photons",
                vec![Operator::Udf {
                    name: "deskew".into(),
                    params: vec!["7".into()],
                }],
            )
            .unwrap(),
        ]
    }

    /// The load-bearing soundness property: whenever the full match accepts
    /// a (stream, subscription) pair, the pre-filter must too, and the
    /// stream's window key (if any) must fall inside the subscription's
    /// probe ranges. Pruning may only ever drop non-matches.
    #[test]
    fn prefilter_never_rejects_a_true_match() {
        let all = fixtures();
        for stream in &all {
            let summary = ChainSummary::of(stream);
            for query in &all {
                let lens = QueryLens::of(query);
                if match_input_properties(stream, query) {
                    assert!(
                        lens.may_be_served_by(&summary),
                        "pre-filter dropped a matching candidate:\n  stream {stream}\n  query {query}"
                    );
                    if let Some(key) = summary.window_key() {
                        assert!(
                            lens.admits_window_key(&key),
                            "window range missed a matching candidate:\n  stream {stream}\n  query {query}"
                        );
                    }
                }
            }
        }
    }

    /// The pre-filter must actually prune: known non-matches from the
    /// paper's examples are rejected without running the full match.
    #[test]
    fn prefilter_prunes_known_non_matches() {
        let q1 = sel_props(
            region(("120", "138"), ("-49", "-40"), None),
            &["coord/cel/ra", "coord/cel/dec", "phc", "en", "det_time"],
        );
        let q2 = sel_props(
            region(("130.5", "135.5"), ("-48", "-45"), Some("1.3")),
            &["coord/cel/ra", "coord/cel/dec", "en", "det_time"],
        );
        // Q2's narrower stream cannot serve Q1: bounds not implied.
        assert!(!QueryLens::of(&q1).may_be_served_by(&ChainSummary::of(&q2)));
        // An aggregate stream cannot serve a selection-only query: kinds.
        let agg = agg_props(AggOp::Avg, "20", "10", ResultFilter::none());
        assert!(!QueryLens::of(&q1).may_be_served_by(&ChainSummary::of(&agg)));
        // A coarser aggregate cannot serve a finer one: window lattice.
        let fine = agg_props(AggOp::Avg, "20", "10", ResultFilter::none());
        let coarse = agg_props(AggOp::Avg, "60", "40", ResultFilter::none());
        assert!(!QueryLens::of(&fine).may_be_served_by(&ChainSummary::of(&coarse)));
        assert!(!QueryLens::of(&fine)
            .admits_window_key(&ChainSummary::of(&coarse).window_key().unwrap()));
        assert!(QueryLens::of(&coarse).may_be_served_by(&ChainSummary::of(&fine)));
    }

    #[test]
    fn signature_subsets() {
        let empty = Signature::of(&[]);
        let q1 = sel_props(region(("0", "1"), ("0", "1"), None), &["en"]);
        let sig = Signature::of(q1.operators());
        assert!(empty.is_subset_of(&sig));
        assert!(empty.is_subset_of(&empty));
        assert!(sig.is_subset_of(&sig));
        assert!(!sig.is_subset_of(&empty));
        assert_eq!(sig.len(), 2);
        assert!(empty.is_empty());
        assert_eq!(sig.to_string(), "{σ,π}");
        let udf = |name: &str| {
            Signature::of(&[Operator::Udf {
                name: name.into(),
                params: vec![],
            }])
        };
        assert!(!udf("a").is_subset_of(&udf("b")));
        assert!(udf("a").is_subset_of(&udf("a")));
    }

    #[test]
    fn window_keys_order_by_size_within_shape() {
        let fine = ChainSummary::of(&agg_props(AggOp::Avg, "20", "10", ResultFilter::none()))
            .window_key()
            .unwrap();
        let coarse = ChainSummary::of(&agg_props(AggOp::Avg, "60", "40", ResultFilter::none()))
            .window_key()
            .unwrap();
        assert!(fine < coarse);
        // Aggregation and window-contents keys never collide.
        let wout = ChainSummary::of(&wout_props("20", "10"))
            .window_key()
            .unwrap();
        assert_ne!(fine, wout);
        // Selection-only chains have no window key.
        let sel = sel_props(region(("0", "1"), ("0", "1"), None), &["en"]);
        assert!(ChainSummary::of(&sel).window_key().is_none());
        assert!(QueryLens::of(&sel).window_ranges().is_empty());
    }

    #[test]
    fn multi_selection_query_disables_bound_prefilter() {
        // Two selections in one chain: a stream selection may match either,
        // so the lens must not prune on bounds.
        let two = InputProperties::new(
            "photons",
            vec![
                Operator::Selection(region(("0", "1"), ("0", "1"), None)),
                Operator::Selection(region(("100", "200"), ("-90", "90"), None)),
            ],
        )
        .unwrap();
        let lens = QueryLens::of(&two);
        // A stream whose bounds only the *second* selection implies must
        // survive the pre-filter (only kinds are checked).
        let cand = ChainSummary::of(
            &InputProperties::new(
                "photons",
                vec![Operator::Selection(region(
                    ("100", "200"),
                    ("-90", "90"),
                    None,
                ))],
            )
            .unwrap(),
        );
        assert!(lens.may_be_served_by(&cand));
    }
}
