//! Data window specifications (Section 2 of the paper).
//!
//! A window is written `|count Δ [step µ]|` (item-based) or
//! `|π diff Δ [step µ]|` (value-based over an ordered reference element,
//! e.g. `det_time`). If omitted, the step size defaults to Δ (tumbling
//! windows).

use std::fmt;

use dss_xml::{Decimal, Path};

/// Window kind: item-based (`count`) or value-based (`diff`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WindowKind {
    /// Fixed number of items.
    Count,
    /// Fixed range of an ordered reference element (a real or abstract
    /// timestamp).
    Diff,
}

impl fmt::Display for WindowKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WindowKind::Count => write!(f, "count"),
            WindowKind::Diff => write!(f, "diff"),
        }
    }
}

/// Errors constructing a window specification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WindowError {
    /// Δ and µ must be positive.
    NonPositive { what: &'static str, value: Decimal },
    /// `count` windows need integer Δ and µ.
    NonIntegerCount { what: &'static str, value: Decimal },
}

impl fmt::Display for WindowError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WindowError::NonPositive { what, value } => {
                write!(f, "window {what} must be positive, got {value}")
            }
            WindowError::NonIntegerCount { what, value } => {
                write!(f, "count-window {what} must be an integer, got {value}")
            }
        }
    }
}

impl std::error::Error for WindowError {}

/// A data window specification: kind, optional reference element, window
/// size Δ, and step size µ.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct WindowSpec {
    kind: WindowKind,
    /// Reference element controlling a `diff` window (`None` for `count`).
    reference: Option<Path>,
    /// Window size Δ.
    size: Decimal,
    /// Step size µ (defaults to Δ).
    step: Decimal,
}

impl WindowSpec {
    /// `|count Δ step µ|`. Pass `step = None` for the default `µ = Δ`.
    pub fn count(size: Decimal, step: Option<Decimal>) -> Result<WindowSpec, WindowError> {
        let step = step.unwrap_or(size);
        Self::check_positive(size, step)?;
        if !size.is_integer() {
            return Err(WindowError::NonIntegerCount {
                what: "size Δ",
                value: size,
            });
        }
        if !step.is_integer() {
            return Err(WindowError::NonIntegerCount {
                what: "step µ",
                value: step,
            });
        }
        Ok(WindowSpec {
            kind: WindowKind::Count,
            reference: None,
            size,
            step,
        })
    }

    /// `|reference diff Δ step µ|`. Pass `step = None` for the default
    /// `µ = Δ`.
    pub fn diff(
        reference: Path,
        size: Decimal,
        step: Option<Decimal>,
    ) -> Result<WindowSpec, WindowError> {
        let step = step.unwrap_or(size);
        Self::check_positive(size, step)?;
        Ok(WindowSpec {
            kind: WindowKind::Diff,
            reference: Some(reference),
            size,
            step,
        })
    }

    fn check_positive(size: Decimal, step: Decimal) -> Result<(), WindowError> {
        if size.signum() <= 0 {
            return Err(WindowError::NonPositive {
                what: "size Δ",
                value: size,
            });
        }
        if step.signum() <= 0 {
            return Err(WindowError::NonPositive {
                what: "step µ",
                value: step,
            });
        }
        Ok(())
    }

    /// Window kind.
    pub fn kind(&self) -> WindowKind {
        self.kind
    }

    /// The ordered reference element of a `diff` window.
    pub fn reference(&self) -> Option<&Path> {
        self.reference.as_ref()
    }

    /// Window size Δ.
    pub fn size(&self) -> Decimal {
        self.size
    }

    /// Step size µ.
    pub fn step(&self) -> Decimal {
        self.step
    }

    /// Tumbling window (step equals size)?
    pub fn is_tumbling(&self) -> bool {
        self.size == self.step
    }

    /// `true` if `a` is an exact integer multiple of `b` (`a mod b = 0` in
    /// the paper's notation), computed exactly over decimals.
    pub fn is_multiple_of(a: Decimal, b: Decimal) -> bool {
        if b == Decimal::ZERO {
            return false;
        }
        let scale = a.scale().max(b.scale());
        let (au, bu) = (a.units_at_scale(scale), b.units_at_scale(scale));
        au % bu == 0
    }

    /// Window compatibility for sharing aggregation results (Section 3.3,
    /// "Window-based Aggregation"): the window of the *new* subscription
    /// (`self`) can be assembled from the windows of the *reused* aggregate
    /// (`reused`) iff
    ///
    /// 1. both windows have the same kind and (for `diff`) the same ordered
    ///    reference element,
    /// 2. `Δ' mod Δ = 0` — a fixed number of reused windows fits into one
    ///    new window,
    /// 3. `Δ mod µ = 0` — the reused aggregate admits a sequence of
    ///    non-overlapping windows covering the whole input, and
    /// 4. `µ' mod µ = 0` — the reused aggregate delivers a value at least
    ///    each time the new aggregate must produce one.
    pub fn shareable_from(&self, reused: &WindowSpec) -> bool {
        if self.kind != reused.kind || self.reference != reused.reference {
            return false;
        }
        // Equal-size windows need no composition: every new window *is* a
        // reused window, which exists whenever the new step lands on the
        // reused step's grid (µ' mod µ = 0). The paper's three modulo
        // conditions govern composing several reused windows into a coarser
        // one and would spuriously reject e.g. |diff 60 step 40| against
        // itself because 60 mod 40 ≠ 0.
        if self.size == reused.size {
            return WindowSpec::is_multiple_of(self.step, reused.step);
        }
        WindowSpec::is_multiple_of(self.size, reused.size)
            && WindowSpec::is_multiple_of(reused.size, reused.step)
            && WindowSpec::is_multiple_of(self.step, reused.step)
    }
}

impl fmt::Display for WindowSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "|")?;
        if let Some(r) = &self.reference {
            write!(f, "{r} ")?;
        }
        write!(f, "{} {}", self.kind, self.size)?;
        if !self.is_tumbling() {
            write!(f, " step {}", self.step)?;
        }
        write!(f, "|")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(s: &str) -> Decimal {
        s.parse().unwrap()
    }

    fn p(s: &str) -> Path {
        s.parse().unwrap()
    }

    fn count(size: &str, step: Option<&str>) -> WindowSpec {
        WindowSpec::count(d(size), step.map(d)).unwrap()
    }

    fn diff(size: &str, step: Option<&str>) -> WindowSpec {
        WindowSpec::diff(p("det_time"), d(size), step.map(d)).unwrap()
    }

    #[test]
    fn step_defaults_to_size() {
        let w = count("20", None);
        assert_eq!(w.step(), d("20"));
        assert!(w.is_tumbling());
        let w = diff("60", Some("40"));
        assert!(!w.is_tumbling());
    }

    #[test]
    fn validation() {
        assert!(WindowSpec::count(d("0"), None).is_err());
        assert!(WindowSpec::count(d("-5"), None).is_err());
        assert!(WindowSpec::count(d("5"), Some(d("0"))).is_err());
        assert!(WindowSpec::count(d("5.5"), None).is_err());
        assert!(WindowSpec::count(d("5"), Some(d("2.5"))).is_err());
        // diff windows may have fractional sizes.
        assert!(WindowSpec::diff(p("det_time"), d("0.5"), None).is_ok());
    }

    #[test]
    fn multiples() {
        assert!(WindowSpec::is_multiple_of(d("60"), d("20")));
        assert!(!WindowSpec::is_multiple_of(d("60"), d("40")));
        assert!(WindowSpec::is_multiple_of(d("1.5"), d("0.5")));
        assert!(!WindowSpec::is_multiple_of(d("1.5"), d("0.4")));
        assert!(WindowSpec::is_multiple_of(d("3"), d("3")));
        assert!(!WindowSpec::is_multiple_of(d("3"), d("0")));
    }

    /// The paper's Figure 5: Query 3 has |det_time diff 20 step 10|,
    /// Query 4 has |det_time diff 60 step 40|. Q4's windows can be
    /// assembled from Q3's: Δ'=60 is a multiple of Δ=20, Δ=20 is a multiple
    /// of µ=10, µ'=40 is a multiple of µ=10.
    #[test]
    fn figure5_q4_from_q3() {
        let q3 = diff("20", Some("10"));
        let q4 = diff("60", Some("40"));
        assert!(q4.shareable_from(&q3));
        assert!(!q3.shareable_from(&q4)); // 20 mod 60 ≠ 0
    }

    #[test]
    fn sharing_requires_same_kind_and_reference() {
        let c = count("20", Some("10"));
        let t = diff("20", Some("10"));
        assert!(!c.shareable_from(&t));
        assert!(!t.shareable_from(&c));
        let other_ref = WindowSpec::diff(p("en"), d("20"), Some(d("10"))).unwrap();
        assert!(!t.shareable_from(&other_ref));
    }

    #[test]
    fn sharing_requires_reused_window_covering() {
        // Reused: size 20 step 15 — 20 mod 15 ≠ 0, so no non-overlapping
        // cover exists; nothing can share it.
        let reused = count("20", Some("15"));
        let new = count("60", Some("30"));
        assert!(!new.shareable_from(&reused));
    }

    #[test]
    fn sharing_requires_step_multiple() {
        let reused = count("20", Some("10"));
        // µ' = 25 is not a multiple of µ = 10.
        let new = count("60", Some("25"));
        assert!(!new.shareable_from(&reused));
        let ok = count("60", Some("30"));
        assert!(ok.shareable_from(&reused));
    }

    #[test]
    fn identical_windows_are_shareable() {
        let w = diff("20", Some("10"));
        assert!(w.shareable_from(&w.clone()));
        let t = count("20", None);
        assert!(t.shareable_from(&t.clone()));
    }

    #[test]
    fn display() {
        assert_eq!(count("20", Some("10")).to_string(), "|count 20 step 10|");
        assert_eq!(count("20", None).to_string(), "|count 20|");
        assert_eq!(
            diff("60", Some("40")).to_string(),
            "|det_time diff 60 step 40|"
        );
    }
}
