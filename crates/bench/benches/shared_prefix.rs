//! Intra-peer operator sharing: cost of running N flows with the identical
//! operator chain over one stream at one peer, fused into a prefix-sharing
//! DAG vs. one pipeline per flow.
//!
//! Besides the timing numbers, a `cargo bench` run writes the measured
//! per-peer work totals to `BENCH_shared_prefix.json` — the headline is
//! the work ratio at 16 flows (≥3x less when fused; by construction the
//! fully shared chain executes once instead of 16 times).

use std::collections::BTreeMap;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dss_bench::json::number;
use dss_network::{
    grid_topology, run, Deployment, FlowInput, FlowOp, SimConfig, StreamFlow, Topology,
};
use dss_predicate::{Atom, CompOp, PredicateGraph};
use dss_properties::{
    AggOp, AggregationSpec, InputProperties, Operator, Properties, ResultFilter, WindowSpec,
};
use dss_rass::{GeneratorConfig, PhotonGenerator};
use dss_xml::{Decimal, Node, Path};

const FLOW_COUNTS: [usize; 3] = [1, 4, 16];
const N_ITEMS: usize = 2_000;

/// The shared chain: σ(en ≥ 1.2) → Φ avg over |det_time diff 20 step 10|.
fn chain() -> Vec<FlowOp> {
    let sel = PredicateGraph::from_atoms(&[Atom::var_const(
        "en".parse::<Path>().unwrap(),
        CompOp::Ge,
        "1.2".parse::<Decimal>().unwrap(),
    )]);
    let agg = AggregationSpec {
        op: AggOp::Avg,
        element: "en".parse().unwrap(),
        window: WindowSpec::diff(
            "det_time".parse().unwrap(),
            Decimal::from_int(20),
            Some(Decimal::from_int(10)),
        )
        .unwrap(),
        pre_selection: PredicateGraph::new(),
        result_filter: ResultFilter::none(),
    };
    vec![
        FlowOp::Standard(Operator::Selection(sel)),
        FlowOp::Standard(Operator::Aggregation(agg)),
    ]
}

/// One source flow SP0→SP1 plus `n` identical taps processed at SP1.
fn deployment(n: usize) -> (Topology, Deployment) {
    let t = grid_topology(2, 2);
    let (sp0, sp1) = (t.expect_node("SP0"), t.expect_node("SP1"));
    let mut d = Deployment::new();
    let src = d.add_flow(StreamFlow {
        label: "photons".into(),
        input: FlowInput::Source {
            stream: "photons".into(),
        },
        processing_node: sp0,
        ops: Vec::new(),
        route: vec![sp0, sp1],
        properties: Some(Properties::single(InputProperties::original("photons"))),
        retired: false,
    });
    for i in 0..n {
        d.add_flow(StreamFlow {
            label: format!("tap{i}"),
            input: FlowInput::Tap { parent: src },
            processing_node: sp1,
            ops: chain(),
            route: vec![sp1],
            properties: None,
            retired: false,
        });
    }
    (t, d)
}

fn sources() -> BTreeMap<String, Vec<Node>> {
    let cfg = GeneratorConfig {
        seed: 7,
        mean_time_increment: 0.1,
        ..GeneratorConfig::default()
    };
    let mut m = BTreeMap::new();
    m.insert(
        "photons".to_string(),
        PhotonGenerator::new(cfg).generate_items(N_ITEMS),
    );
    m
}

/// Forwarding work zeroed so `node_work` isolates operator execution.
fn cfg(shared_ops: bool) -> SimConfig {
    SimConfig {
        forward_work_per_kb: 0.0,
        shared_ops,
        ..SimConfig::default()
    }
}

fn bench_shared_prefix(c: &mut Criterion) {
    let src = sources();
    let mut g = c.benchmark_group("shared_prefix/sim");
    g.throughput(Throughput::Elements(N_ITEMS as u64));
    for n in FLOW_COUNTS {
        let (t, d) = deployment(n);
        g.bench_with_input(BenchmarkId::new("fused", n), &n, |b, _| {
            b.iter(|| run(&t, &d, &src, cfg(true)).metrics.node_work.len())
        });
        g.bench_with_input(BenchmarkId::new("unfused", n), &n, |b, _| {
            b.iter(|| run(&t, &d, &src, cfg(false)).metrics.node_work.len())
        });
    }
    g.finish();

    // Work accounting, written once per `cargo bench` invocation.
    if std::env::args().any(|a| a == "--bench") {
        let src = sources();
        let mut fused_work = Vec::new();
        let mut unfused_work = Vec::new();
        for n in FLOW_COUNTS {
            let (t, d) = deployment(n);
            let sp1 = t.expect_node("SP1");
            fused_work.push(run(&t, &d, &src, cfg(true)).metrics.node_work[sp1]);
            unfused_work.push(run(&t, &d, &src, cfg(false)).metrics.node_work[sp1]);
        }
        let list = |vals: &[f64]| {
            vals.iter()
                .map(|&v| number(v))
                .collect::<Vec<_>>()
                .join(",")
        };
        let ratios: Vec<f64> = fused_work
            .iter()
            .zip(&unfused_work)
            .map(|(f, u)| u / f)
            .collect();
        let json = format!(
            "{{\"bench\":\"shared_prefix\",\"items\":{N_ITEMS},\"flows\":[{}],\
             \"fused_work\":[{}],\"unfused_work\":[{}],\"work_ratio\":[{}]}}\n",
            FLOW_COUNTS.map(|n| n.to_string()).join(","),
            list(&fused_work),
            list(&unfused_work),
            list(&ratios),
        );
        let path = "BENCH_shared_prefix.json";
        std::fs::write(path, &json).expect("write bench results");
        println!("shared_prefix work ratios {ratios:?} -> {path}");
    }
}

criterion_group!(benches, bench_shared_prefix);
criterion_main!(benches);
