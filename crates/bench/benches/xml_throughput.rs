//! Substrate sanity: XML tokenizer / stream-reader parse throughput and
//! serializer throughput over photon items.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use dss_rass::default_photons;
use dss_xml::reader::StreamReader;
use dss_xml::writer::{node_to_string, serialized_size, stream_close, stream_open};
use dss_xml::Tokenizer;

fn stream_document(n: usize) -> String {
    let items = default_photons(5, n);
    let mut doc = stream_open("photons");
    for item in &items {
        doc.push_str(&node_to_string(item));
    }
    doc.push_str(&stream_close("photons"));
    doc
}

fn bench_tokenizer(c: &mut Criterion) {
    let doc = stream_document(2_000);
    let mut g = c.benchmark_group("xml/tokenizer");
    g.throughput(Throughput::Bytes(doc.len() as u64));
    g.bench_function("events", |b| {
        b.iter(|| {
            let mut t = Tokenizer::from_str(&doc);
            let mut n = 0usize;
            while t.next_event().expect("well-formed").is_some() {
                n += 1;
            }
            n
        })
    });
    g.finish();
}

fn bench_stream_reader(c: &mut Criterion) {
    let doc = stream_document(2_000);
    let mut g = c.benchmark_group("xml/stream-reader");
    g.throughput(Throughput::Bytes(doc.len() as u64));
    g.bench_function("items", |b| {
        b.iter(|| {
            let mut r = StreamReader::new();
            r.feed(doc.as_bytes());
            r.finish();
            let mut n = 0usize;
            while r.next_item().expect("well-formed").is_some() {
                n += 1;
            }
            n
        })
    });
    // Chunked feeding, as the network delivers it.
    g.bench_function("items-chunked-256", |b| {
        b.iter(|| {
            let mut r = StreamReader::new();
            let mut n = 0usize;
            for chunk in doc.as_bytes().chunks(256) {
                r.feed(chunk);
                while r.next_item().expect("well-formed").is_some() {
                    n += 1;
                }
            }
            n
        })
    });
    g.finish();
}

fn bench_serializer(c: &mut Criterion) {
    let items = default_photons(6, 2_000);
    let bytes: usize = items.iter().map(serialized_size).sum();
    let mut g = c.benchmark_group("xml/serializer");
    g.throughput(Throughput::Bytes(bytes as u64));
    g.bench_function("to-string", |b| {
        b.iter(|| {
            items
                .iter()
                .map(node_to_string)
                .map(|s| s.len())
                .sum::<usize>()
        })
    });
    g.bench_function("size-only", |b| {
        b.iter(|| items.iter().map(serialized_size).sum::<usize>())
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_tokenizer,
    bench_stream_reader,
    bench_serializer
);
criterion_main!(benches);
