//! Ablation: predicate-graph construction, satisfiability, minimization,
//! and the two `MatchPredicates` variants (closure-complete vs. the
//! paper-literal edgewise algorithm) as predicate size grows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dss_predicate::{match_predicates, match_predicates_edgewise, Atom, CompOp, PredicateGraph};
use dss_xml::{Decimal, Path};

fn d(v: f64) -> Decimal {
    Decimal::from_f64_rounded(v, 3)
}

/// A conjunctive range predicate over `vars` variables: lo_i ≤ v_i ≤ hi_i,
/// plus a chain v_i ≤ v_{i+1} + 1 to exercise derived bounds.
fn range_atoms(vars: usize, tightness: f64) -> Vec<Atom> {
    let mut atoms = Vec::new();
    for i in 0..vars {
        let var: Path = format!("e{i}").parse().unwrap();
        atoms.push(Atom::var_const(
            var.clone(),
            CompOp::Ge,
            d(10.0 * i as f64 + tightness),
        ));
        atoms.push(Atom::var_const(
            var.clone(),
            CompOp::Le,
            d(10.0 * i as f64 + 50.0 - tightness),
        ));
        if i + 1 < vars {
            let next: Path = format!("e{}", i + 1).parse().unwrap();
            atoms.push(Atom::var_var(var, CompOp::Le, next, d(1.0)));
        }
    }
    atoms
}

fn bench_construction(c: &mut Criterion) {
    let mut g = c.benchmark_group("predicate/construct+minimize");
    for vars in [2usize, 4, 8, 16] {
        let atoms = range_atoms(vars, 0.0);
        g.bench_with_input(BenchmarkId::from_parameter(vars), &atoms, |b, atoms| {
            b.iter(|| PredicateGraph::from_atoms(atoms).minimize())
        });
    }
    g.finish();
}

fn bench_satisfiability(c: &mut Criterion) {
    let mut g = c.benchmark_group("predicate/satisfiability");
    for vars in [2usize, 8, 16] {
        let graph = PredicateGraph::from_atoms(&range_atoms(vars, 0.0));
        g.bench_with_input(BenchmarkId::from_parameter(vars), &graph, |b, graph| {
            b.iter(|| graph.is_satisfiable())
        });
    }
    g.finish();
}

fn bench_matching(c: &mut Criterion) {
    let mut g = c.benchmark_group("predicate/match");
    for vars in [2usize, 8, 16] {
        let stream = PredicateGraph::from_atoms(&range_atoms(vars, 0.0)).minimize();
        let query = PredicateGraph::from_atoms(&range_atoms(vars, 5.0)).minimize();
        g.bench_with_input(BenchmarkId::new("complete", vars), &vars, |b, _| {
            b.iter(|| match_predicates(&stream, &query))
        });
        g.bench_with_input(BenchmarkId::new("edgewise", vars), &vars, |b, _| {
            b.iter(|| match_predicates_edgewise(&stream, &query))
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_construction,
    bench_satisfiability,
    bench_matching
);
criterion_main!(benches);
