//! Allocation churn on the per-item hot path: a σ→Π→ρ chain driven through
//! the sink API with one reused output buffer, plus the same chain through
//! the allocating compatibility wrappers — the spread between the two is
//! what buffer reuse buys.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use dss_engine::{build_pipeline, Emit, Pipeline, RestructureOp, StreamOperator, Template};
use dss_predicate::{Atom, CompOp, PredicateGraph};
use dss_properties::{Operator, ProjectionSpec};
use dss_rass::default_photons;
use dss_xml::{Decimal, Node, Path};

fn p(s: &str) -> Path {
    s.parse().unwrap()
}

/// σ (Vela region) → Π (three paths) as a properties operator chain.
fn chain() -> Vec<Operator> {
    vec![
        Operator::Selection(PredicateGraph::from_atoms(&[
            Atom::var_const(p("coord/cel/ra"), CompOp::Ge, Decimal::from_int(120)),
            Atom::var_const(p("coord/cel/ra"), CompOp::Le, Decimal::from_int(138)),
            Atom::var_const(p("coord/cel/dec"), CompOp::Ge, Decimal::from_int(-49)),
            Atom::var_const(p("coord/cel/dec"), CompOp::Le, Decimal::from_int(-40)),
        ])),
        Operator::Projection(ProjectionSpec::returning([
            p("coord/cel/ra"),
            p("coord/cel/dec"),
            p("en"),
        ])),
    ]
}

fn restructurer() -> RestructureOp {
    RestructureOp::new(Template::element(
        "vela",
        vec![
            Template::Subtree(p("coord/cel/ra")),
            Template::Subtree(p("coord/cel/dec")),
            Template::Subtree(p("en")),
        ],
    ))
}

fn run_sink(pipe: &mut Pipeline, post: &mut RestructureOp, items: &[Node]) -> usize {
    let mut stage = Emit::new();
    let mut sink = Emit::new();
    let mut n = 0usize;
    for item in items {
        pipe.process_into(item, &mut stage);
        for mid in &stage {
            post.process_into(mid, &mut sink);
        }
        n += sink.len();
        stage.clear();
        sink.clear();
    }
    pipe.flush_into(&mut stage);
    for mid in &stage {
        post.process_into(mid, &mut sink);
    }
    n + sink.len()
}

fn run_collect(pipe: &mut Pipeline, post: &mut RestructureOp, items: &[Node]) -> usize {
    use dss_engine::StreamOperatorExt;
    let mut n = 0usize;
    for item in items {
        for mid in pipe.process(item) {
            n += post.process_collect(&mid).len();
        }
    }
    for mid in pipe.flush() {
        n += post.process_collect(&mid).len();
    }
    n
}

fn bench_node_churn(c: &mut Criterion) {
    let items = default_photons(23, 10_000);
    let mut g = c.benchmark_group("node-churn/select-project-restructure");
    g.throughput(Throughput::Elements(items.len() as u64));
    g.bench_function("sink-reused-buffers", |b| {
        b.iter(|| {
            let mut pipe = build_pipeline(&chain());
            let mut post = restructurer();
            run_sink(&mut pipe, &mut post, &items)
        })
    });
    g.bench_function("collect-per-item", |b| {
        b.iter(|| {
            let mut pipe = build_pipeline(&chain());
            let mut post = restructurer();
            run_collect(&mut pipe, &mut post, &items)
        })
    });
    g.finish();
}

criterion_group!(benches, bench_node_churn);
criterion_main!(benches);
