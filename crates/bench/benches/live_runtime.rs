//! Discrete-event scheduler throughput: the live runtime replaying the
//! example deployment, with and without a mid-run super-peer crash (the
//! crash adds the failover re-plan plus the runtime's deployment re-sync
//! to the measured cost).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use dss_core::{Strategy, StreamGlobe};
use dss_network::runtime::{FaultScript, LiveConfig};
use dss_rass::scenario::example_network;
use dss_wxquery::queries;

fn shared_system() -> StreamGlobe {
    let mut sys = example_network();
    for (name, text, peer) in [
        ("q_east", queries::Q1, "P4"),
        ("q1", queries::Q1, "P1"),
        ("q2", queries::Q2, "P2"),
    ] {
        sys.register_query(name, text, peer, Strategy::StreamSharing)
            .expect("query registers");
    }
    sys
}

fn bench_live_runtime(c: &mut Criterion) {
    let cfg = LiveConfig {
        duration_s: 30.0,
        ..Default::default()
    };
    // ~2 items/s replayed to three queries over 30 simulated seconds.
    let mut g = c.benchmark_group("live-runtime/example-network");
    g.throughput(Throughput::Elements(60));
    g.bench_function("no-faults", |b| {
        b.iter(|| {
            let mut sys = shared_system();
            sys.run_live(cfg, &FaultScript::new()).unwrap()
        })
    });
    g.bench_function("sp5-crash-and-failover", |b| {
        b.iter(|| {
            let mut sys = shared_system();
            let sp5 = sys.topology().expect_node("SP5");
            let faults = FaultScript::new().crash_peer(10.0, sp5);
            sys.run_live(cfg, &faults).unwrap()
        })
    });
    g.finish();
}

criterion_group!(benches, bench_live_runtime);
criterion_main!(benches);
