//! Ablation of Table 1: the cost of the `Subscribe` search (Algorithm 1)
//! as the number of already-registered queries and the network size grow —
//! plus the registration-latency curve against large installed
//! subscription populations (indexed catalog lookup vs. the full-scan
//! reference). A `cargo bench` run writes the measured curve to
//! `BENCH_subscribe.json`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dss_bench::registration::{registration_curve, smoke_sets};
use dss_core::{subscribe, subscribe_full_scan, SearchOrder, Strategy, StreamGlobe};
use dss_network::grid_topology;
use dss_rass::{QueryTemplateGenerator, Scenario};
use dss_wxquery::compile_query;

/// Scenario-1 system with the first `n` template queries installed under
/// stream sharing.
fn loaded_system(n: usize) -> (StreamGlobe, String) {
    let scenario = Scenario::scenario1(7);
    let mut system = scenario.build_system();
    for q in scenario.queries.iter().take(n) {
        system
            .register_query(q.id.clone(), &q.text, &q.peer, Strategy::StreamSharing)
            .expect("scenario query registers");
    }
    // The probe query planned (but not installed) inside the benchmark.
    let probe = scenario
        .queries
        .last()
        .expect("scenario has queries")
        .text
        .clone();
    (system, probe)
}

fn bench_vs_registered_queries(c: &mut Criterion) {
    let mut g = c.benchmark_group("subscribe/vs-registered-queries");
    for n in [0usize, 5, 15, 25] {
        let (system, probe) = loaded_system(n);
        let compiled = compile_query(&probe).expect("probe compiles");
        let v_q = system.topology().expect_node("SP7");
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                subscribe(system.state(), &compiled, v_q, v_q, SearchOrder::Bfs, false)
                    .expect("plan found")
            })
        });
    }
    g.finish();
}

fn bench_vs_network_size(c: &mut Criterion) {
    let mut g = c.benchmark_group("subscribe/vs-grid-size");
    for dim in [2usize, 4, 6, 8] {
        let mut system = StreamGlobe::new(grid_topology(dim, dim));
        system
            .register_stream("photons", "SP0", dss_rass::default_photons(1, 300), 50.0)
            .expect("stream registers");
        // Pre-register a handful of queries so streams exist to search.
        let mut tgen = QueryTemplateGenerator::new(3, "photons");
        for i in 0..8 {
            let peer = format!("SP{}", (i * dim * dim / 8) % (dim * dim));
            system
                .register_query(
                    format!("q{i}"),
                    &tgen.next_query(),
                    &peer,
                    Strategy::StreamSharing,
                )
                .expect("query registers");
        }
        let probe = compile_query(&tgen.next_query()).expect("probe compiles");
        let v_q = system
            .topology()
            .expect_node(&format!("SP{}", dim * dim - 1));
        g.bench_with_input(BenchmarkId::from_parameter(dim * dim), &dim, |b, _| {
            b.iter(|| {
                subscribe(system.state(), &probe, v_q, v_q, SearchOrder::Bfs, false)
                    .expect("plan found")
            })
        });
    }
    g.finish();
}

fn bench_bfs_vs_dfs(c: &mut Criterion) {
    let (system, probe) = loaded_system(25);
    let compiled = compile_query(&probe).expect("probe compiles");
    let v_q = system.topology().expect_node("SP7");
    let mut g = c.benchmark_group("subscribe/order");
    g.bench_function("bfs", |b| {
        b.iter(|| subscribe(system.state(), &compiled, v_q, v_q, SearchOrder::Bfs, false).unwrap())
    });
    g.bench_function("dfs", |b| {
        b.iter(|| subscribe(system.state(), &compiled, v_q, v_q, SearchOrder::Dfs, false).unwrap())
    });
    g.finish();
}

/// A 6×6-grid system with `n` template subscriptions installed from the
/// narrow smoke value sets (the high-sharing regime of Section 4), plus
/// an unregistered probe query.
fn populated_system(n: usize) -> (StreamGlobe, String) {
    let mut system = StreamGlobe::new(grid_topology(6, 6));
    system
        .register_stream("photons", "SP0", dss_rass::default_photons(7, 200), 60.0)
        .expect("stream registers");
    let mut tgen = QueryTemplateGenerator::with_sets(7, "photons", smoke_sets());
    for i in 0..n {
        let peer = format!("SP{}", (i * 13 + 5) % 36);
        system
            .register_query(
                format!("q{i}"),
                &tgen.next_query(),
                &peer,
                Strategy::StreamSharing,
            )
            .expect("query registers");
    }
    (system, tgen.next_query())
}

/// The tentpole ablation: candidate lookup against 1k/10k installed
/// subscriptions, indexed catalog vs. the pre-index full scan. The
/// indexed search stays near-flat across tiers; the full scan grows with
/// the deployed flow table.
fn bench_vs_installed_subscriptions(c: &mut Criterion) {
    let mut g = c.benchmark_group("subscribe/vs-installed-subscriptions");
    g.sample_size(20);
    for n in [1_000usize, 10_000] {
        let (system, probe) = populated_system(n);
        let compiled = compile_query(&probe).expect("probe compiles");
        let v_q = system.topology().expect_node("SP21");
        g.bench_with_input(BenchmarkId::new("indexed", n), &n, |b, _| {
            b.iter(|| {
                subscribe(system.state(), &compiled, v_q, v_q, SearchOrder::Bfs, false)
                    .expect("plan found")
            })
        });
        g.bench_with_input(BenchmarkId::new("full-scan", n), &n, |b, _| {
            b.iter(|| {
                subscribe_full_scan(
                    system.state(),
                    &compiled,
                    v_q,
                    v_q,
                    SearchOrder::Bfs,
                    false,
                    false,
                )
                .expect("plan found")
            })
        });
    }
    g.finish();

    // Registration-curve accounting, written once per `cargo bench`
    // invocation (small tiers here; `registration_smoke` covers 100k and,
    // with DSS_BENCH_FULL=1, the million-subscription tier).
    if std::env::args().any(|a| a == "--bench") {
        let curve = registration_curve(7, &[1_000, 10_000]);
        let path = "BENCH_subscribe.json";
        std::fs::write(path, curve.to_json()).expect("write bench results");
        let ratios: Vec<f64> = curve.tiers.iter().map(|t| t.flat_ratio).collect();
        println!("subscribe registration flat ratios {ratios:?} -> {path}");
    }
}

criterion_group!(
    benches,
    bench_vs_registered_queries,
    bench_vs_network_size,
    bench_bfs_vs_dfs,
    bench_vs_installed_subscriptions
);
criterion_main!(benches);
