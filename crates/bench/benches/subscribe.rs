//! Ablation of Table 1: the cost of the `Subscribe` search (Algorithm 1)
//! as the number of already-registered queries and the network size grow.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dss_core::{subscribe, SearchOrder, Strategy, StreamGlobe};
use dss_network::grid_topology;
use dss_rass::{QueryTemplateGenerator, Scenario};
use dss_wxquery::compile_query;

/// Scenario-1 system with the first `n` template queries installed under
/// stream sharing.
fn loaded_system(n: usize) -> (StreamGlobe, String) {
    let scenario = Scenario::scenario1(7);
    let mut system = scenario.build_system();
    for q in scenario.queries.iter().take(n) {
        system
            .register_query(q.id.clone(), &q.text, &q.peer, Strategy::StreamSharing)
            .expect("scenario query registers");
    }
    // The probe query planned (but not installed) inside the benchmark.
    let probe = scenario
        .queries
        .last()
        .expect("scenario has queries")
        .text
        .clone();
    (system, probe)
}

fn bench_vs_registered_queries(c: &mut Criterion) {
    let mut g = c.benchmark_group("subscribe/vs-registered-queries");
    for n in [0usize, 5, 15, 25] {
        let (system, probe) = loaded_system(n);
        let compiled = compile_query(&probe).expect("probe compiles");
        let v_q = system.topology().expect_node("SP7");
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                subscribe(system.state(), &compiled, v_q, v_q, SearchOrder::Bfs, false)
                    .expect("plan found")
            })
        });
    }
    g.finish();
}

fn bench_vs_network_size(c: &mut Criterion) {
    let mut g = c.benchmark_group("subscribe/vs-grid-size");
    for dim in [2usize, 4, 6, 8] {
        let mut system = StreamGlobe::new(grid_topology(dim, dim));
        system
            .register_stream("photons", "SP0", dss_rass::default_photons(1, 300), 50.0)
            .expect("stream registers");
        // Pre-register a handful of queries so streams exist to search.
        let mut tgen = QueryTemplateGenerator::new(3, "photons");
        for i in 0..8 {
            let peer = format!("SP{}", (i * dim * dim / 8) % (dim * dim));
            system
                .register_query(
                    format!("q{i}"),
                    &tgen.next_query(),
                    &peer,
                    Strategy::StreamSharing,
                )
                .expect("query registers");
        }
        let probe = compile_query(&tgen.next_query()).expect("probe compiles");
        let v_q = system
            .topology()
            .expect_node(&format!("SP{}", dim * dim - 1));
        g.bench_with_input(BenchmarkId::from_parameter(dim * dim), &dim, |b, _| {
            b.iter(|| {
                subscribe(system.state(), &probe, v_q, v_q, SearchOrder::Bfs, false)
                    .expect("plan found")
            })
        });
    }
    g.finish();
}

fn bench_bfs_vs_dfs(c: &mut Criterion) {
    let (system, probe) = loaded_system(25);
    let compiled = compile_query(&probe).expect("probe compiles");
    let v_q = system.topology().expect_node("SP7");
    let mut g = c.benchmark_group("subscribe/order");
    g.bench_function("bfs", |b| {
        b.iter(|| subscribe(system.state(), &compiled, v_q, v_q, SearchOrder::Bfs, false).unwrap())
    });
    g.bench_function("dfs", |b| {
        b.iter(|| subscribe(system.state(), &compiled, v_q, v_q, SearchOrder::Dfs, false).unwrap())
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_vs_registered_queries,
    bench_vs_network_size,
    bench_bfs_vs_dfs
);
criterion_main!(benches);
