//! Ablation of Figure 5: computing a coarse window aggregate directly from
//! the raw photon stream vs. re-aggregating the shared partials of a finer
//! aggregate.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dss_engine::{AggregateOp, Emit, ReAggregateOp, StreamOperator, StreamOperatorExt};
use dss_predicate::PredicateGraph;
use dss_properties::{AggOp, AggregationSpec, ResultFilter, WindowSpec};
use dss_rass::{GeneratorConfig, PhotonGenerator};
use dss_xml::{Decimal, Node, Path};

fn spec(size: u32, step: u32) -> AggregationSpec {
    AggregationSpec {
        op: AggOp::Avg,
        element: "en".parse::<Path>().unwrap(),
        window: WindowSpec::diff(
            "det_time".parse().unwrap(),
            Decimal::from_int(size as i64),
            Some(Decimal::from_int(step as i64)),
        )
        .unwrap(),
        pre_selection: PredicateGraph::new(),
        result_filter: ResultFilter::none(),
    }
}

fn photons(n: usize) -> Vec<Node> {
    let cfg = GeneratorConfig {
        seed: 99,
        mean_time_increment: 0.1,
        ..GeneratorConfig::default()
    };
    PhotonGenerator::new(cfg).generate_items(n)
}

fn bench_direct_vs_shared(c: &mut Criterion) {
    let items = photons(20_000);
    // Q3-style fine aggregate partials, precomputed once (in the network
    // they arrive as a shared stream).
    let fine = spec(20, 10);
    let coarse = spec(60, 40);
    let mut fine_op = AggregateOp::new(fine.clone());
    let mut partials: Vec<Node> = Vec::new();
    for item in &items {
        partials.extend(fine_op.process_collect(item));
    }
    partials.extend(fine_op.flush_collect());

    let mut g = c.benchmark_group("window/coarse-aggregate");
    g.throughput(Throughput::Elements(items.len() as u64));
    g.bench_function("direct-from-raw", |b| {
        b.iter(|| {
            let mut op = AggregateOp::new(coarse.clone());
            let mut sink = Emit::new();
            let mut out = 0usize;
            for item in &items {
                op.process_into(item, &mut sink);
                out += sink.len();
                sink.clear();
            }
            op.flush_into(&mut sink);
            out + sink.len()
        })
    });
    g.bench_function("shared-from-partials", |b| {
        b.iter(|| {
            let mut op = ReAggregateOp::new(fine.clone(), coarse.clone());
            let mut sink = Emit::new();
            let mut out = 0usize;
            for partial in &partials {
                op.process_into(partial, &mut sink);
                out += sink.len();
                sink.clear();
            }
            op.flush_into(&mut sink);
            out + sink.len()
        })
    });
    g.finish();
}

fn bench_aggregate_throughput_by_overlap(c: &mut Criterion) {
    let items = photons(10_000);
    let mut g = c.benchmark_group("window/aggregate-by-overlap");
    g.throughput(Throughput::Elements(items.len() as u64));
    // Tumbling (step = size) vs. increasingly overlapping windows.
    for (size, step) in [(40u32, 40u32), (40, 20), (40, 10), (40, 5)] {
        let s = spec(size, step);
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("{size}/{step}")),
            &s,
            |b, s| {
                b.iter(|| {
                    let mut op = AggregateOp::new(s.clone());
                    let mut sink = Emit::new();
                    let mut out = 0usize;
                    for item in &items {
                        op.process_into(item, &mut sink);
                        out += sink.len();
                        sink.clear();
                    }
                    op.flush_into(&mut sink);
                    out + sink.len()
                })
            },
        );
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_direct_vs_shared,
    bench_aggregate_throughput_by_overlap
);
criterion_main!(benches);
