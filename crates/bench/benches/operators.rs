//! Per-operator throughput: selection, projection, aggregation, and
//! restructuring over photon items.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use dss_engine::{
    build_pipeline, Emit, ProjectOp, RestructureOp, SelectOp, StreamOperator, Template,
};
use dss_predicate::{Atom, CompOp, PredicateGraph};
use dss_properties::{Operator, ProjectionSpec};
use dss_rass::default_photons;
use dss_wxquery::{compile_query, queries};
use dss_xml::{Decimal, Node, Path};

fn p(s: &str) -> Path {
    s.parse().unwrap()
}

fn vela_selection() -> PredicateGraph {
    PredicateGraph::from_atoms(&[
        Atom::var_const(p("coord/cel/ra"), CompOp::Ge, Decimal::from_int(120)),
        Atom::var_const(p("coord/cel/ra"), CompOp::Le, Decimal::from_int(138)),
        Atom::var_const(p("coord/cel/dec"), CompOp::Ge, Decimal::from_int(-49)),
        Atom::var_const(p("coord/cel/dec"), CompOp::Le, Decimal::from_int(-40)),
    ])
}

fn items() -> Vec<Node> {
    default_photons(17, 10_000)
}

fn bench_select(c: &mut Criterion) {
    let items = items();
    let mut g = c.benchmark_group("operators/select");
    g.throughput(Throughput::Elements(items.len() as u64));
    g.bench_function("vela-region", |b| {
        b.iter(|| {
            let mut op = SelectOp::new(vela_selection());
            let mut out = Emit::new();
            let mut n = 0usize;
            for i in &items {
                op.process_into(i, &mut out);
                n += out.len();
                out.clear();
            }
            n
        })
    });
    g.finish();
}

fn bench_project(c: &mut Criterion) {
    let items = items();
    let spec = ProjectionSpec::returning([p("coord/cel/ra"), p("coord/cel/dec"), p("en")]);
    let mut g = c.benchmark_group("operators/project");
    g.throughput(Throughput::Elements(items.len() as u64));
    g.bench_function("three-paths", |b| {
        b.iter(|| {
            let mut op = ProjectOp::new(spec.clone());
            let mut out = Emit::new();
            let mut n = 0usize;
            for i in &items {
                op.process_into(i, &mut out);
                n += out.len();
                out.clear();
            }
            n
        })
    });
    g.finish();
}

fn bench_restructure(c: &mut Criterion) {
    let items = items();
    let template = Template::element(
        "vela",
        vec![
            Template::Subtree(p("coord/cel/ra")),
            Template::Subtree(p("coord/cel/dec")),
            Template::Subtree(p("en")),
            Template::Subtree(p("det_time")),
        ],
    );
    let mut g = c.benchmark_group("operators/restructure");
    g.throughput(Throughput::Elements(items.len() as u64));
    g.bench_function("q1-template", |b| {
        b.iter(|| {
            let mut op = RestructureOp::new(template.clone());
            let mut out = Emit::new();
            let mut n = 0usize;
            for i in &items {
                op.process_into(i, &mut out);
                n += out.len();
                out.clear();
            }
            n
        })
    });
    g.finish();
}

fn bench_full_query_chains(c: &mut Criterion) {
    let items = items();
    let mut g = c.benchmark_group("operators/full-chain");
    g.throughput(Throughput::Elements(items.len() as u64));
    for (name, text) in queries::ALL {
        let compiled = compile_query(text).expect("paper query compiles");
        let chain: Vec<Operator> = compiled.operator_chain().to_vec();
        g.bench_function(name, |b| {
            b.iter(|| {
                let mut pipe = build_pipeline(&chain);
                let mut sink = Emit::new();
                let mut out = 0usize;
                for item in &items {
                    pipe.process_into(item, &mut sink);
                    out += sink.len();
                    sink.clear();
                }
                pipe.flush_into(&mut sink);
                out + sink.len()
            })
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_select,
    bench_project,
    bench_restructure,
    bench_full_query_chains
);
criterion_main!(benches);
