//! Minimal JSON emission for experiment results.
//!
//! The experiment binaries can dump their series as JSON for external
//! plotting. The structures are small and flat, so a hand-rolled emitter
//! keeps the workspace inside its allowed dependency set (no `serde_json`).

use std::fmt::Write;

use crate::experiments::{FigureData, RegTimes, SeriesTable};

/// Escapes a string for a JSON string literal.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Formats an `f64` as a JSON number (finite values only; NaN/∞ become
/// `null`).
pub fn number(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

impl SeriesTable {
    /// JSON object: `{"title": …, "labels": […], "series": {strategy: […]}}`.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        let _ = write!(out, "{{\"title\":\"{}\",\"labels\":[", escape(&self.title));
        for (i, l) in self.labels.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{}\"", escape(l));
        }
        out.push_str("],\"series\":{");
        for (i, (strategy, col)) in dss_core::Strategy::ALL
            .iter()
            .zip(&self.columns)
            .enumerate()
        {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{}\":[", escape(&strategy.to_string()));
            for (j, v) in col.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str(&number(*v));
            }
            out.push(']');
        }
        out.push_str("}}");
        out
    }
}

impl FigureData {
    /// JSON object with both series tables.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"cpu\":{},\"traffic\":{}}}",
            self.cpu.to_json(),
            self.traffic.to_json()
        )
    }
}

/// JSON for Table 1 (registration times in microseconds).
pub fn table1_json(data: &[[RegTimes; 2]; 3]) -> String {
    let us = |d: std::time::Duration| d.as_secs_f64() * 1e6;
    let mut out = String::from("{");
    for (i, (strategy, row)) in dss_core::Strategy::ALL.iter().zip(data).enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "\"{}\":[{{\"avg_us\":{},\"min_us\":{},\"max_us\":{}}},\
             {{\"avg_us\":{},\"min_us\":{},\"max_us\":{}}}]",
            escape(&strategy.to_string()),
            number(us(row[0].average)),
            number(us(row[0].minimum)),
            number(us(row[0].maximum)),
            number(us(row[1].average)),
            number(us(row[1].minimum)),
            number(us(row[1].maximum)),
        );
    }
    out.push('}');
    out
}

/// JSON for the rejection experiment.
pub fn rejections_json(rej: &[(usize, usize); 3]) -> String {
    let mut out = String::from("{");
    for (i, (strategy, (acc, r))) in dss_core::Strategy::ALL.iter().zip(rej).enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "\"{}\":{{\"accepted\":{acc},\"rejected\":{r}}}",
            escape(&strategy.to_string())
        );
    }
    out.push('}');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::SeriesTable;

    #[test]
    fn escaping() {
        assert_eq!(escape("plain"), "plain");
        assert_eq!(escape("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(escape("line\nbreak"), "line\\nbreak");
        assert_eq!(escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn numbers() {
        assert_eq!(number(1.5), "1.5");
        assert_eq!(number(f64::NAN), "null");
        assert_eq!(number(f64::INFINITY), "null");
    }

    #[test]
    fn series_table_json_shape() {
        let t = SeriesTable {
            title: "test \"quoted\"".into(),
            labels: vec!["SP0".into(), "SP1".into()],
            columns: [vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]],
        };
        let j = t.to_json();
        assert!(j.starts_with("{\"title\":\"test \\\"quoted\\\"\""));
        assert!(j.contains("\"labels\":[\"SP0\",\"SP1\"]"));
        assert!(j.contains("\"data shipping\":[1,2]"));
        assert!(j.contains("\"stream sharing\":[5,6]"));
        assert!(j.ends_with("}}"));
        // Balanced braces/brackets.
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        assert_eq!(j.matches('[').count(), j.matches(']').count());
    }

    #[test]
    fn rejections_json_shape() {
        let j = rejections_json(&[(48, 52), (63, 37), (100, 0)]);
        assert!(j.contains("\"data shipping\":{\"accepted\":48,\"rejected\":52}"));
        assert!(j.contains("\"stream sharing\":{\"accepted\":100,\"rejected\":0}"));
    }
}
