//! The experiment drivers regenerating every table and figure of the
//! paper's evaluation (Section 4).
//!
//! | id | paper artifact | driver |
//! |----|----------------|--------|
//! | E1/E2 | Figure 6 (scenario 1 CPU load / connection traffic) | [`fig6`] |
//! | E3/E4 | Figure 7 (scenario 2 CPU load / accumulated traffic) | [`fig7`] |
//! | E5 | Table 1 (query registration times) | [`table1`] |
//! | E6 | rejection counts under capacity caps | [`rejections`] |
//! | E7 | Figures 1/2 (motivating stream sizes) | [`motivating`] |

use std::time::Duration;

use dss_core::{AdmissionControl, Strategy};
use dss_network::SimConfig;
use dss_rass::Scenario;
use dss_wxquery::queries;

use crate::report::{f3, render_table};

/// Default deterministic seed for all experiments.
pub const DEFAULT_SEED: u64 = 42;

fn sim_config(scenario: &Scenario) -> SimConfig {
    // Simulated duration = sample length at the stream frequency, so the
    // reported rates correspond to the generated data.
    let s = &scenario.streams[0];
    SimConfig {
        duration_s: s.items.len() as f64 / s.frequency,
        ..SimConfig::default()
    }
}

/// One figure's data: per-label series per strategy.
#[derive(Debug, Clone)]
pub struct SeriesTable {
    pub title: String,
    pub labels: Vec<String>,
    /// One column per strategy, in `Strategy::ALL` order.
    pub columns: [Vec<f64>; 3],
}

impl SeriesTable {
    /// Renders the table.
    pub fn render(&self) -> String {
        let header: Vec<String> = std::iter::once("".to_string())
            .chain(Strategy::ALL.iter().map(|s| s.to_string()))
            .collect();
        let rows: Vec<Vec<String>> = self
            .labels
            .iter()
            .enumerate()
            .map(|(i, l)| {
                vec![
                    l.clone(),
                    f3(self.columns[0][i]),
                    f3(self.columns[1][i]),
                    f3(self.columns[2][i]),
                ]
            })
            .collect();
        format!("{}\n{}", self.title, render_table(&header, &rows))
    }

    /// Sum of one strategy's series.
    pub fn total(&self, strategy_idx: usize) -> f64 {
        self.columns[strategy_idx].iter().sum()
    }

    /// Maximum of one strategy's series.
    pub fn peak(&self, strategy_idx: usize) -> f64 {
        self.columns[strategy_idx]
            .iter()
            .copied()
            .fold(0.0, f64::max)
    }
}

/// Figure-6/7 style outcome: CPU-load series and traffic series.
#[derive(Debug, Clone)]
pub struct FigureData {
    pub cpu: SeriesTable,
    pub traffic: SeriesTable,
}

/// E1/E2 — Figure 6: scenario 1 (8 super-peers, 1 stream, 25 queries).
/// Left: average CPU load (%) per super-peer. Right: average network
/// traffic (kbps) per backbone connection.
pub fn fig6(seed: u64) -> FigureData {
    let scenario = Scenario::scenario1(seed);
    let cfg = sim_config(&scenario);
    let topo = scenario.topology.clone();
    let sps = topo.super_peers();
    let sp_labels: Vec<String> = sps.iter().map(|&v| topo.peer(v).name.clone()).collect();
    // Backbone connections only (both endpoints super-peers).
    let edges: Vec<usize> = (0..topo.edge_count())
        .filter(|&e| {
            let edge = topo.edge(e);
            sps.contains(&edge.a) && sps.contains(&edge.b)
        })
        .collect();
    let edge_labels: Vec<String> = edges
        .iter()
        .map(|&e| {
            let edge = topo.edge(e);
            format!("{}-{}", topo.peer(edge.a).name, topo.peer(edge.b).name)
        })
        .collect();

    let mut cpu_cols: [Vec<f64>; 3] = Default::default();
    let mut traffic_cols: [Vec<f64>; 3] = Default::default();
    for (i, strategy) in Strategy::ALL.into_iter().enumerate() {
        let outcome = scenario.run(strategy, false);
        assert!(
            outcome.errored.is_empty(),
            "{strategy}: {:?}",
            outcome.errored
        );
        let sim = outcome.simulate(cfg);
        cpu_cols[i] = sps
            .iter()
            .map(|&v| sim.metrics.node_load_pct(&topo, v))
            .collect();
        traffic_cols[i] = edges.iter().map(|&e| sim.metrics.edge_kbps(e)).collect();
    }
    FigureData {
        cpu: SeriesTable {
            title: "Figure 6 (left): avg CPU load (%) per super-peer — scenario 1".into(),
            labels: sp_labels,
            columns: cpu_cols,
        },
        traffic: SeriesTable {
            title: "Figure 6 (right): avg network traffic (kbps) per connection — scenario 1"
                .into(),
            labels: edge_labels,
            columns: traffic_cols,
        },
    }
}

/// E3/E4 — Figure 7: scenario 2 (4×4 grid, 2 streams, 100 queries).
/// Left: average CPU load (%) per super-peer. Right: accumulated traffic
/// (MBit, incoming + outgoing) per super-peer.
pub fn fig7(seed: u64) -> FigureData {
    let scenario = Scenario::scenario2(seed);
    let cfg = sim_config(&scenario);
    let topo = scenario.topology.clone();
    let sps = topo.super_peers();
    let labels: Vec<String> = sps.iter().map(|&v| topo.peer(v).name.clone()).collect();
    let mut cpu_cols: [Vec<f64>; 3] = Default::default();
    let mut acc_cols: [Vec<f64>; 3] = Default::default();
    for (i, strategy) in Strategy::ALL.into_iter().enumerate() {
        let outcome = scenario.run(strategy, false);
        assert!(
            outcome.errored.is_empty(),
            "{strategy}: {:?}",
            outcome.errored
        );
        let sim = outcome.simulate(cfg);
        cpu_cols[i] = sps
            .iter()
            .map(|&v| sim.metrics.node_load_pct(&topo, v))
            .collect();
        acc_cols[i] = sps
            .iter()
            .map(|&v| sim.metrics.node_acc_traffic_mbit(v))
            .collect();
    }
    FigureData {
        cpu: SeriesTable {
            title: "Figure 7 (left): avg CPU load (%) per super-peer — scenario 2".into(),
            labels: labels.clone(),
            columns: cpu_cols,
        },
        traffic: SeriesTable {
            title: "Figure 7 (right): accumulated traffic (MBit, in+out) per super-peer — \
                    scenario 2"
                .into(),
            labels,
            columns: acc_cols,
        },
    }
}

/// Registration-time statistics of one strategy on one scenario.
#[derive(Debug, Clone, Copy)]
pub struct RegTimes {
    pub average: Duration,
    pub minimum: Duration,
    pub maximum: Duration,
}

/// E5 — Table 1: query registration times per strategy and scenario.
pub fn table1(seed: u64) -> [[RegTimes; 2]; 3] {
    let scenarios = [Scenario::scenario1(seed), Scenario::scenario2(seed)];
    let mut out = [[RegTimes {
        average: Duration::ZERO,
        minimum: Duration::ZERO,
        maximum: Duration::ZERO,
    }; 2]; 3];
    for (si, strategy) in Strategy::ALL.into_iter().enumerate() {
        for (ci, scenario) in scenarios.iter().enumerate() {
            let outcome = scenario.run(strategy, false);
            assert!(
                outcome.errored.is_empty(),
                "{strategy}: {:?}",
                outcome.errored
            );
            let times: Vec<Duration> = outcome.registrations.iter().map(|r| r.elapsed).collect();
            let sum: Duration = times.iter().sum();
            out[si][ci] = RegTimes {
                average: sum / times.len() as u32,
                minimum: times.iter().min().copied().unwrap_or_default(),
                maximum: times.iter().max().copied().unwrap_or_default(),
            };
        }
    }
    out
}

/// Renders Table 1.
pub fn render_table1(data: &[[RegTimes; 2]; 3]) -> String {
    let us = |d: Duration| format!("{:.1}", d.as_secs_f64() * 1e6);
    let header: Vec<String> = [
        "Scenario", "Avg 1", "Avg 2", "Min 1", "Min 2", "Max 1", "Max 2",
    ]
    .map(String::from)
    .to_vec();
    let rows: Vec<Vec<String>> = Strategy::ALL
        .iter()
        .zip(data)
        .map(|(s, row)| {
            vec![
                s.to_string(),
                us(row[0].average),
                us(row[1].average),
                us(row[0].minimum),
                us(row[1].minimum),
                us(row[0].maximum),
                us(row[1].maximum),
            ]
        })
        .collect();
    format!(
        "Table 1: query registration times (µs) per strategy (columns: scenario 1 / scenario 2)\n{}",
        render_table(&header, &rows)
    )
}

/// E6 — the rejection experiment: scenario 2 with peer CPU capped at 10 %
/// and connections at 1 Mbit/s; returns `(accepted, rejected)` per
/// strategy.
pub fn rejections(seed: u64) -> [(usize, usize); 3] {
    let scenario = Scenario::scenario2(seed);
    let mut out = [(0, 0); 3];
    for (i, strategy) in Strategy::ALL.into_iter().enumerate() {
        let mut system = scenario.build_system();
        AdmissionControl::apply_caps(&mut system, 0.10, 1_000.0);
        let batch: Vec<(String, String, String)> = scenario
            .queries
            .iter()
            .map(|q| (q.id.clone(), q.text.clone(), q.peer.clone()))
            .collect();
        let report = AdmissionControl::register_batch(&mut system, &batch, strategy);
        assert!(
            report.errored.is_empty(),
            "{strategy}: {:?}",
            report.errored
        );
        out[i] = (report.accepted_count(), report.rejected_count());
    }
    out
}

/// E7 — the motivating example (Figures 1/2): per-strategy total traffic
/// for the paper's Queries 1–4 on the example network.
pub fn motivating() -> SeriesTable {
    let placements = [
        ("Q1", queries::Q1, "P1"),
        ("Q2", queries::Q2, "P2"),
        ("Q3", queries::Q3, "P3"),
        ("Q4", queries::Q4, "P4"),
    ];
    let mut columns: [Vec<f64>; 3] = Default::default();
    for (i, strategy) in Strategy::ALL.into_iter().enumerate() {
        let mut system = dss_rass::scenario::example_network();
        for (name, text, peer) in placements {
            system
                .register_query(name, text, peer, strategy)
                .unwrap_or_else(|e| panic!("{name}: {e}"));
        }
        let sim = system.run_simulation(SimConfig {
            duration_s: 500.0,
            ..SimConfig::default()
        });
        let topo = system.topology();
        columns[i] = topo
            .super_peers()
            .iter()
            .map(|&v| sim.metrics.node_acc_traffic_mbit(v))
            .collect();
    }
    let topo = dss_network::example_topology();
    SeriesTable {
        title: "Motivating example (Figures 1/2): accumulated traffic (MBit) per super-peer, \
                Queries 1–4"
            .into(),
        labels: topo
            .super_peers()
            .iter()
            .map(|&v| topo.peer(v).name.clone())
            .collect(),
        columns,
    }
}

/// E8 — widening ablation (the implemented ongoing-work extension):
/// scenario 1 registered under stream sharing with widening off vs. on.
/// Returns `((traffic_off, reused_off), (traffic_on, reused_on))`.
pub fn widening_ablation(seed: u64) -> ((u64, usize), (u64, usize)) {
    let scenario = Scenario::scenario1(seed);
    let cfg = sim_config(&scenario);
    let run = |widening: bool| {
        let mut system = scenario.build_system();
        system.set_widening(widening);
        let mut reused = 0;
        for q in &scenario.queries {
            let reg = system
                .register_query(q.id.clone(), &q.text, &q.peer, Strategy::StreamSharing)
                .unwrap_or_else(|e| panic!("{}: {e}", q.id));
            if reg.reused_derived_stream {
                reused += 1;
            }
        }
        let sim = system.run_simulation(cfg);
        (sim.metrics.total_edge_bytes(), reused)
    };
    (run(false), run(true))
}

/// E9 — γ sweep: the cost model's weighting factor γ "determines which
/// part of the cost function should be more dominant — network traffic or
/// peer load" (Section 3.2). Runs scenario 1 under stream sharing for each
/// γ and reports `(gamma, total traffic bytes, peak CPU %)`.
pub fn gamma_sweep(seed: u64) -> Vec<(f64, u64, f64)> {
    let scenario = Scenario::scenario1(seed);
    let cfg = sim_config(&scenario);
    let topo = scenario.topology.clone();
    [0.0, 0.25, 0.5, 0.75, 1.0]
        .into_iter()
        .map(|gamma| {
            let mut system = dss_core::StreamGlobe::with_params(
                scenario.topology.clone(),
                dss_core::CostParams { gamma },
            );
            for s in &scenario.streams {
                system
                    .register_stream(s.name.clone(), &s.peer, s.items.clone(), s.frequency)
                    .expect("stream registers");
            }
            for q in &scenario.queries {
                system
                    .register_query(q.id.clone(), &q.text, &q.peer, Strategy::StreamSharing)
                    .unwrap_or_else(|e| panic!("{}: {e}", q.id));
            }
            let sim = system.run_simulation(cfg);
            let peak_cpu = topo
                .super_peers()
                .iter()
                .map(|&v| sim.metrics.node_load_pct(&topo, v))
                .fold(0.0, f64::max);
            (gamma, sim.metrics.total_edge_bytes(), peak_cpu)
        })
        .collect()
}

/// One row of the scalability experiment.
#[derive(Debug, Clone, Copy)]
pub struct ScalabilityRow {
    /// Number of super-peers in the grid.
    pub peers: usize,
    /// Average registration time for the last five queries.
    pub avg_registration: Duration,
    /// Average peers visited by the pruned search.
    pub avg_nodes_visited: f64,
    /// Average candidate streams matched.
    pub avg_candidates: f64,
}

/// E10 — scalability of the `Subscribe` search: grid networks of growing
/// size, 24 template queries each; measures how the *pruned* breadth-first
/// search (it only follows connections carrying matching streams) scales
/// with the network, the paper's stated scalability concern ("one
/// [opportunity] is to address the issue of scalability…").
pub fn scalability(seed: u64) -> Vec<ScalabilityRow> {
    use dss_core::{subscribe, SearchOrder, StreamGlobe};
    use dss_network::grid_topology;
    use dss_rass::{default_photons, QueryTemplateGenerator};
    use dss_wxquery::compile_query;

    [3usize, 4, 6, 8, 10]
        .into_iter()
        .map(|dim| {
            let mut system = StreamGlobe::new(grid_topology(dim, dim));
            system
                .register_stream("photons", "SP0", default_photons(seed, 400), 60.0)
                .expect("stream registers");
            let mut tgen = QueryTemplateGenerator::new(seed ^ dim as u64, "photons");
            let mut times = Vec::new();
            let mut visited = Vec::new();
            let mut candidates = Vec::new();
            for i in 0..24 {
                let peer = format!("SP{}", (i * dim * dim / 24) % (dim * dim));
                let text = tgen.next_query();
                // Measure the last five registrations (network populated).
                if i >= 19 {
                    let compiled = compile_query(&text).expect("template compiles");
                    let v_q = system.topology().expect_node(&peer);
                    // One trace span per measured registration: the nested
                    // `subscribe_input` spans carry a `visit` event per
                    // dequeued peer, so a `--trace` capture reproduces the
                    // peers-visited column of this table.
                    let probe_span = dss_telemetry::span("scalability_probe", || {
                        [
                            ("grid_peers", dss_telemetry::Value::from(dim * dim)),
                            ("query", format!("q{i}").into()),
                            ("peer", peer.as_str().into()),
                        ]
                    });
                    let start = std::time::Instant::now();
                    let (_, stats) =
                        subscribe(system.state(), &compiled, v_q, v_q, SearchOrder::Bfs, false)
                            .expect("plan found");
                    times.push(start.elapsed());
                    dss_telemetry::add_field("nodes_visited", || stats.nodes_visited.into());
                    dss_telemetry::add_field("candidates_matched", || {
                        stats.candidates_matched.into()
                    });
                    drop(probe_span);
                    visited.push(stats.nodes_visited as f64);
                    candidates.push(stats.candidates_matched as f64);
                }
                system
                    .register_query(format!("q{i}"), &text, &peer, Strategy::StreamSharing)
                    .expect("query registers");
            }
            let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
            ScalabilityRow {
                peers: dim * dim,
                avg_registration: times.iter().sum::<Duration>() / times.len() as u32,
                avg_nodes_visited: avg(&visited),
                avg_candidates: avg(&candidates),
            }
        })
        .collect()
}

/// E11 — registration latency vs. installed subscriptions: the indexed
/// catalog lookup keeps per-registration latency near-flat as the
/// population grows (tiers here are sized for the full-evaluation binary;
/// `registration_smoke` runs the 100k gate and, with `DSS_BENCH_FULL=1`,
/// the million-subscription tier).
pub fn registration_scaling(seed: u64) -> Vec<crate::registration::TierReport> {
    crate::registration::registration_curve(seed, &[500, 2_000, 8_000]).tiers
}

/// Quick textual verdict comparing measured shapes with the paper's claims.
pub fn verdicts(fig6: &FigureData, fig7: &FigureData, rej: &[(usize, usize); 3]) -> String {
    let mut out = String::new();
    let check = |ok: bool| if ok { "PASS" } else { "FAIL" };
    // Traffic ordering: data shipping > query shipping > stream sharing.
    let t6 = [
        fig6.traffic.total(0),
        fig6.traffic.total(1),
        fig6.traffic.total(2),
    ];
    out.push_str(&format!(
        "[{}] scenario 1 total traffic: data shipping ({:.1}) > query shipping ({:.1}) > \
         stream sharing ({:.1})\n",
        check(t6[0] > t6[1] && t6[1] > t6[2]),
        t6[0],
        t6[1],
        t6[2]
    ));
    let t7 = [
        fig7.traffic.total(0),
        fig7.traffic.total(1),
        fig7.traffic.total(2),
    ];
    out.push_str(&format!(
        "[{}] scenario 2 total traffic: data shipping ({:.1}) > query shipping ({:.1}) > \
         stream sharing ({:.1})\n",
        check(t7[0] > t7[1] && t7[1] > t7[2]),
        t7[0],
        t7[1],
        t7[2]
    ));
    // Query shipping's CPU peak at the source super-peer dominates the
    // other strategies' peaks.
    let peaks = [fig6.cpu.peak(0), fig6.cpu.peak(1), fig6.cpu.peak(2)];
    out.push_str(&format!(
        "[{}] scenario 1 CPU peak: query shipping ({:.2} %) highest (data shipping {:.2} %, \
         stream sharing {:.2} %)\n",
        check(peaks[1] > peaks[0] && peaks[1] > peaks[2]),
        peaks[1],
        peaks[0],
        peaks[2]
    ));
    // Stream sharing has the lowest total CPU load.
    let cpu_tot = [fig6.cpu.total(0), fig6.cpu.total(1), fig6.cpu.total(2)];
    out.push_str(&format!(
        "[{}] scenario 1 total CPU: stream sharing ({:.2}) lowest (data shipping {:.2}, \
         query shipping {:.2})\n",
        check(cpu_tot[2] < cpu_tot[0] && cpu_tot[2] < cpu_tot[1]),
        cpu_tot[2],
        cpu_tot[0],
        cpu_tot[1]
    ));
    // Rejections: data shipping > query shipping ≫ stream sharing (paper:
    // 47 / 35 / 2).
    out.push_str(&format!(
        "[{}] rejections under caps: data shipping ({}) > query shipping ({}) > stream \
         sharing ({}); paper: 47/35/2\n",
        check(
            rej[0].1 > rej[1].1 && rej[1].1 > rej[2].1 || (rej[1].1 >= rej[2].1 && rej[2].1 <= 5)
        ),
        rej[0].1,
        rej[1].1,
        rej[2].1
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig6_shapes() {
        let data = fig6(DEFAULT_SEED);
        assert_eq!(data.cpu.labels.len(), 8);
        assert_eq!(data.traffic.labels.len(), 10);
        // Traffic ordering.
        assert!(data.traffic.total(0) > data.traffic.total(1));
        assert!(data.traffic.total(1) > data.traffic.total(2));
        // Query shipping peaks at the source super-peer (SP4).
        let sp4 = data.cpu.labels.iter().position(|l| l == "SP4").unwrap();
        let qs = &data.cpu.columns[1];
        assert_eq!(
            qs.iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
                .map(|(i, _)| i),
            Some(sp4),
            "query shipping must peak at SP4"
        );
        assert!(data.render_smoke());
    }

    #[test]
    fn fig7_shapes() {
        let data = fig7(DEFAULT_SEED);
        assert_eq!(data.cpu.labels.len(), 16);
        assert!(data.traffic.total(0) > data.traffic.total(1));
        assert!(data.traffic.total(1) > data.traffic.total(2));
    }

    #[test]
    fn table1_has_sane_times() {
        let data = table1(DEFAULT_SEED);
        for row in &data {
            for cell in row {
                assert!(cell.minimum <= cell.average);
                assert!(cell.average <= cell.maximum);
                assert!(cell.maximum.as_secs() < 10);
            }
        }
        let rendered = render_table1(&data);
        assert!(rendered.contains("stream sharing"));
    }

    #[test]
    fn rejection_ordering() {
        let rej = rejections(DEFAULT_SEED);
        assert_eq!(rej[0].0 + rej[0].1, 100);
        assert!(rej[0].1 > rej[1].1, "data shipping rejects most: {rej:?}");
        assert!(
            rej[1].1 > rej[2].1,
            "stream sharing rejects fewest: {rej:?}"
        );
        assert!(rej[2].1 <= 5, "stream sharing rejects almost none: {rej:?}");
    }

    #[test]
    fn widening_never_hurts_and_increases_reuse() {
        let ((t_off, r_off), (t_on, r_on)) = widening_ablation(DEFAULT_SEED);
        assert!(
            r_on >= r_off,
            "widening should not reduce reuse: {r_on} vs {r_off}"
        );
        // The planner only picks widening when its estimated cost is lower,
        // so measured totals should not regress materially (allow 5 % slack
        // for estimate-vs-actual mismatch).
        assert!(
            (t_on as f64) <= t_off as f64 * 1.05,
            "widening regressed traffic: {t_on} vs {t_off}"
        );
    }

    #[test]
    fn scalability_rows_are_sane() {
        let rows = scalability(DEFAULT_SEED);
        assert_eq!(rows.len(), 5);
        assert!(rows.windows(2).all(|w| w[0].peers < w[1].peers));
        for r in &rows {
            // The pruned search must not visit more peers than exist.
            assert!(r.avg_nodes_visited <= r.peers as f64 + 1.0, "{r:?}");
            assert!(r.avg_candidates >= 1.0, "{r:?}");
        }
    }

    #[test]
    fn motivating_traffic_shrinks_with_sharing() {
        let t = motivating();
        assert!(t.total(2) < t.total(0), "sharing beats data shipping");
        assert!(t.total(2) < t.total(1), "sharing beats query shipping");
    }

    impl FigureData {
        fn render_smoke(&self) -> bool {
            let a = self.cpu.render();
            let b = self.traffic.render();
            a.contains("SP") && b.contains("-")
        }
    }
}
