//! The telemetry-overhead guard's workload: the 16-flow fused
//! `shared_prefix` simulation (see `benches/shared_prefix.rs`), packaged as
//! a library function so `scripts/telemetry_overhead.sh` can time the
//! identical work with the telemetry layer compiled in (but disabled) and
//! compiled out, and fail on regression.

use std::collections::BTreeMap;

use dss_network::{
    grid_topology, run, Deployment, FlowInput, FlowOp, SimConfig, StreamFlow, Topology,
};
use dss_predicate::{Atom, CompOp, PredicateGraph};
use dss_properties::{
    AggOp, AggregationSpec, InputProperties, Operator, Properties, ResultFilter, WindowSpec,
};
use dss_rass::{GeneratorConfig, PhotonGenerator};
use dss_xml::{Decimal, Node, Path};

const N_FLOWS: usize = 16;
const N_ITEMS: usize = 2_000;

/// σ(en ≥ 1.2) → Φ avg over |det_time diff 20 step 10| — the chain every
/// tap shares.
fn chain() -> Vec<FlowOp> {
    let sel = PredicateGraph::from_atoms(&[Atom::var_const(
        "en".parse::<Path>().unwrap(),
        CompOp::Ge,
        "1.2".parse::<Decimal>().unwrap(),
    )]);
    let agg = AggregationSpec {
        op: AggOp::Avg,
        element: "en".parse().unwrap(),
        window: WindowSpec::diff(
            "det_time".parse().unwrap(),
            Decimal::from_int(20),
            Some(Decimal::from_int(10)),
        )
        .unwrap(),
        pre_selection: PredicateGraph::new(),
        result_filter: ResultFilter::none(),
    };
    vec![
        FlowOp::Standard(Operator::Selection(sel)),
        FlowOp::Standard(Operator::Aggregation(agg)),
    ]
}

/// One source flow SP0→SP1 plus [`N_FLOWS`] identical taps at SP1.
fn deployment() -> (Topology, Deployment) {
    let t = grid_topology(2, 2);
    let (sp0, sp1) = (t.expect_node("SP0"), t.expect_node("SP1"));
    let mut d = Deployment::new();
    let src = d.add_flow(StreamFlow {
        label: "photons".into(),
        input: FlowInput::Source {
            stream: "photons".into(),
        },
        processing_node: sp0,
        ops: Vec::new(),
        route: vec![sp0, sp1],
        properties: Some(Properties::single(InputProperties::original("photons"))),
        retired: false,
    });
    for i in 0..N_FLOWS {
        d.add_flow(StreamFlow {
            label: format!("tap{i}"),
            input: FlowInput::Tap { parent: src },
            processing_node: sp1,
            ops: chain(),
            route: vec![sp1],
            properties: None,
            retired: false,
        });
    }
    (t, d)
}

/// Pre-built inputs for [`Workload::run_once`], so the timed region holds
/// only the simulation itself.
pub struct Workload {
    topo: Topology,
    deployment: Deployment,
    sources: BTreeMap<String, Vec<Node>>,
}

impl Default for Workload {
    fn default() -> Workload {
        Workload::new()
    }
}

impl Workload {
    pub fn new() -> Workload {
        let (topo, deployment) = deployment();
        let cfg = GeneratorConfig {
            seed: 7,
            mean_time_increment: 0.1,
            ..GeneratorConfig::default()
        };
        let mut sources = BTreeMap::new();
        sources.insert(
            "photons".to_string(),
            PhotonGenerator::new(cfg).generate_items(N_ITEMS),
        );
        Workload {
            topo,
            deployment,
            sources,
        }
    }

    /// Runs the fused simulation once; returns the work total at SP1 so the
    /// caller can keep the result observable (and check determinism).
    pub fn run_once(&self) -> f64 {
        let cfg = SimConfig {
            forward_work_per_kb: 0.0,
            shared_ops: true,
            ..SimConfig::default()
        };
        let outcome = run(&self.topo, &self.deployment, &self.sources, cfg);
        outcome.metrics.node_work[self.topo.expect_node("SP1")]
    }
}
