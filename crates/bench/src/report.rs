//! Plain-text table rendering for the experiment binaries.
//!
//! The paper presents its results as bar charts (Figures 6/7) and a table
//! (Table 1); the binaries print the same series as aligned text tables so
//! they can be diffed, plotted, or pasted into EXPERIMENTS.md.

/// Renders a table: a header row and data rows, columns right-aligned
/// (first column left-aligned).
pub fn render_table(header: &[String], rows: &[Vec<String>]) -> String {
    let cols = header.len();
    let mut widths: Vec<usize> = header.iter().map(String::len).collect();
    for row in rows {
        assert_eq!(row.len(), cols, "ragged table row");
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize], out: &mut String| {
        for (i, (cell, w)) in cells.iter().zip(widths).enumerate() {
            if i == 0 {
                out.push_str(&format!("{cell:<w$}"));
            } else {
                out.push_str(&format!("  {cell:>w$}"));
            }
        }
        out.push('\n');
    };
    fmt_row(header, &widths, &mut out);
    let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
    out.push_str(&"-".repeat(total));
    out.push('\n');
    for row in rows {
        fmt_row(row, &widths, &mut out);
    }
    out
}

/// Formats a float with 2 decimal places.
pub fn f2(v: f64) -> String {
    format!("{v:.2}")
}

/// Formats a float with 3 decimal places.
pub fn f3(v: f64) -> String {
    format!("{v:.3}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let t = render_table(
            &["Peer".into(), "DS".into(), "SS".into()],
            &[
                vec!["SP0".into(), "10.25".into(), "1.50".into()],
                vec!["SP10".into(), "3.00".into(), "0.75".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("Peer"));
        assert!(lines[1].chars().all(|c| c == '-'));
        // All rows same width.
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_rows_rejected() {
        render_table(&["a".into()], &[vec!["1".into(), "2".into()]]);
    }

    #[test]
    fn float_formatting() {
        assert_eq!(f2(1.005), "1.00");
        assert_eq!(f3(0.1), "0.100");
    }
}
