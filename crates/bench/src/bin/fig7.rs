//! Regenerates Figure 7 (scenario 2): average CPU load and accumulated
//! traffic per super-peer, for all three strategies.

use dss_bench::experiments::{fig7, DEFAULT_SEED};

fn main() {
    let seed = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(DEFAULT_SEED);
    let data = fig7(seed);
    println!("{}", data.cpu.render());
    println!("{}", data.traffic.render());
}
