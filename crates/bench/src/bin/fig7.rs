//! Regenerates Figure 7 (scenario 2): average CPU load and accumulated
//! traffic per super-peer, for all three strategies.

use dss_bench::experiments::{fig7, DEFAULT_SEED};

fn main() {
    let (args, trace_path) = dss_bench::trace::split_trace_arg(std::env::args().skip(1).collect());
    let seed = args
        .first()
        .and_then(|s| s.parse().ok())
        .unwrap_or(DEFAULT_SEED);
    if trace_path.is_some() {
        dss_telemetry::reset();
        dss_telemetry::set_enabled(true);
    }
    let data = fig7(seed);
    println!("{}", data.cpu.render());
    println!("{}", data.traffic.render());
    if let Some(path) = trace_path {
        dss_bench::trace::write_snapshot(&path);
    }
}
