//! Times the telemetry-overhead guard workload (the 16-flow fused
//! `shared_prefix` simulation) and prints the median wall time.
//!
//! ```text
//! overhead [iterations]        default 30, plus 3 warm-up runs
//! ```
//!
//! `scripts/telemetry_overhead.sh` runs this binary from two builds — one
//! with the telemetry layer compiled in (the default; recording stays
//! disabled) and one with `--no-default-features` — and compares the
//! `median_ns` lines. Telemetry must stay free when off, so the two medians
//! may differ only by noise.

use std::time::Instant;

fn main() {
    let iterations: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(30);

    // `set_enabled` only sticks when the `runtime` feature is compiled in,
    // so round-tripping the flag detects which build this is.
    dss_telemetry::set_enabled(true);
    let compiled_in = dss_telemetry::enabled();
    dss_telemetry::set_enabled(false);

    let workload = dss_bench::overhead::Workload::new();
    let reference = workload.run_once();
    for _ in 0..2 {
        assert_eq!(
            workload.run_once(),
            reference,
            "workload must be deterministic"
        );
    }

    let mut samples: Vec<u128> = (0..iterations)
        .map(|_| {
            let start = Instant::now();
            let work = workload.run_once();
            let elapsed = start.elapsed().as_nanos();
            assert_eq!(work, reference, "workload must be deterministic");
            elapsed
        })
        .collect();
    samples.sort_unstable();
    let median = samples[samples.len() / 2];

    println!(
        "shared_prefix fused x16: {iterations} iterations, telemetry compiled {} (recording off)",
        if compiled_in { "in" } else { "out" },
    );
    println!("median_ns {median}");
}
