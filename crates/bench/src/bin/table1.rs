//! Regenerates Table 1: query registration times per strategy and scenario.

use dss_bench::experiments::{render_table1, table1, DEFAULT_SEED};

fn main() {
    let seed = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(DEFAULT_SEED);
    println!("{}", render_table1(&table1(seed)));
}
