//! Regenerates Figure 6 (scenario 1): average CPU load per super-peer and
//! average traffic per connection, for all three strategies.

use dss_bench::experiments::{fig6, DEFAULT_SEED};

fn main() {
    let seed = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(DEFAULT_SEED);
    let data = fig6(seed);
    println!("{}", data.cpu.render());
    println!("{}", data.traffic.render());
}
