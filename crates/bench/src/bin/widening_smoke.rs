//! Widening-handoff smoke gate (E12).
//!
//! Runs the 1/4/16-flow × window-size handoff matrix and fails, with a
//! non-zero exit, when
//!
//! * any handoff's post-switch outputs are not byte-identical to a chain
//!   that ran the widened operator list over the entire stream,
//! * any identical-spec handoff dropped a snapshot, or
//! * the moved state scales with the window size instead of the open
//!   position count — the delta path must move O(delta) items while the
//!   replay extent of a full rebuild grows with the window.
//!
//! The measured matrix is written to `BENCH_widening.json` (override
//! with `--out`).

use dss_bench::widening::{gate, matrix_to_json, run_matrix};

fn arg_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1).cloned())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let out = arg_value(&args, "--out").unwrap_or_else(|| "BENCH_widening.json".to_string());

    println!("widening handoff smoke: delta migration vs full rebuild");
    let records = run_matrix();
    for r in &records {
        println!("  {}", r.render());
    }
    std::fs::write(&out, matrix_to_json(&records)).expect("write BENCH_widening.json");
    println!("wrote {out}");

    let failures = gate(&records);
    if failures.is_empty() {
        println!("widening smoke OK");
    } else {
        for f in &failures {
            eprintln!("FAIL: {f}");
        }
        std::process::exit(1);
    }
}
