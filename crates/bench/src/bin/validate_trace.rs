//! Validates a `--trace` snapshot against the checked-in trace schema.
//!
//! ```text
//! validate_trace <trace.json> [schema.json]
//! ```
//!
//! The schema defaults to `schemas/trace.schema.json` at the repository
//! root. Exits non-zero and prints one line per violation if the document
//! does not conform.

use std::process::ExitCode;

use dss_telemetry::{json, schema};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(trace_path) = args.first() else {
        eprintln!("usage: validate_trace <trace.json> [schema.json]");
        return ExitCode::from(2);
    };
    let schema_path = args
        .get(1)
        .cloned()
        .unwrap_or_else(|| "schemas/trace.schema.json".to_string());

    let doc = match load(trace_path) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("{trace_path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let schema = match load(&schema_path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("{schema_path}: {e}");
            return ExitCode::FAILURE;
        }
    };

    let errors = schema::validate(&doc, &schema);
    if errors.is_empty() {
        let count = |key: &str| {
            doc.get(key)
                .and_then(json::Json::as_array)
                .map_or(0, <[_]>::len)
        };
        println!(
            "{trace_path}: conforms to {schema_path} ({} metrics, {} trace roots)",
            count("metrics"),
            count("trace"),
        );
        ExitCode::SUCCESS
    } else {
        for e in &errors {
            eprintln!("{trace_path}: {e}");
        }
        eprintln!("{trace_path}: {} schema violation(s)", errors.len());
        ExitCode::FAILURE
    }
}

fn load(path: &str) -> Result<json::Json, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read: {e}"))?;
    json::parse(&text).map_err(|e| format!("invalid JSON: {e}"))
}
