//! Runs every experiment of the paper's evaluation section and prints the
//! regenerated tables plus shape verdicts (who wins, where the peaks are).

use dss_bench::experiments::{
    fig6, fig7, gamma_sweep, motivating, registration_scaling, rejections, render_table1,
    scalability, table1, verdicts, widening_ablation, DEFAULT_SEED,
};
use dss_core::Strategy;

fn main() {
    let (args, trace_path) = dss_bench::trace::split_trace_arg(std::env::args().skip(1).collect());
    let json_path = args
        .iter()
        .position(|a| a == "--json")
        .and_then(|i| args.get(i + 1).cloned());
    let seed = args
        .iter()
        .filter(|a| *a != "--json" && Some(a.as_str()) != json_path.as_deref())
        .find_map(|a| a.parse().ok())
        .unwrap_or(DEFAULT_SEED);
    println!("=== data stream sharing: full evaluation (seed {seed}) ===\n");

    let f6 = fig6(seed);
    println!("{}", f6.cpu.render());
    println!("{}", f6.traffic.render());

    let f7 = fig7(seed);
    println!("{}", f7.cpu.render());
    println!("{}", f7.traffic.render());

    println!("{}", render_table1(&table1(seed)));

    // Tracing the full evaluation would produce tens of megabytes; the
    // capture covers the two sections the trace schema is about — the
    // rejection experiment (per-registration outcomes, E6) and the
    // Subscribe scalability probes (per-registration search trees, E10).
    if trace_path.is_some() {
        dss_telemetry::reset();
        dss_telemetry::set_enabled(true);
    }
    let rej = rejections(seed);
    dss_telemetry::set_enabled(false);
    println!("Rejections with 10 % CPU / 1 Mbit/s caps (scenario 2, 100 queries):");
    for (strategy, (acc, rejd)) in Strategy::ALL.into_iter().zip(rej) {
        println!("  {strategy:>15}: {acc} accepted, {rejd} rejected");
    }
    println!("  (paper: 47 / 35 / 2 rejected)\n");

    println!("{}", motivating().render());

    let ((t_off, r_off), (t_on, r_on)) = widening_ablation(seed);
    println!("Widening ablation (scenario 1, stream sharing):");
    println!("  widening off: {t_off} bytes total, {r_off}/25 queries reuse derived streams");
    println!("  widening on : {t_on} bytes total, {r_on}/25 queries reuse derived streams\n");

    println!("Gamma sweep (scenario 1, stream sharing):");
    for (gamma, traffic, peak) in gamma_sweep(seed) {
        println!("  gamma={gamma:.2}: {traffic} bytes total, peak CPU {peak:.2} %");
    }
    println!();

    if trace_path.is_some() {
        dss_telemetry::set_enabled(true);
    }
    let scal = scalability(seed);
    dss_telemetry::set_enabled(false);
    println!("Scalability of the Subscribe search (grid networks, 24 queries each):");
    for row in scal {
        println!(
            "  {:>3} super-peers: avg registration {:>8.1} µs, {:>5.1} peers visited, {:>5.1} candidates matched",
            row.peers,
            row.avg_registration.as_secs_f64() * 1e6,
            row.avg_nodes_visited,
            row.avg_candidates,
        );
    }
    println!();

    println!("Registration latency vs. installed subscriptions (6x6 grid, narrow value sets):");
    for tier in registration_scaling(seed) {
        println!("  {}", tier.render());
    }
    println!();

    println!("=== shape verdicts vs. the paper ===");
    print!("{}", verdicts(&f6, &f7, &rej));

    if let Some(path) = json_path {
        let json = format!(
            "{{\"seed\":{seed},\"fig6\":{},\"fig7\":{},\"table1\":{},\"rejections\":{}}}",
            f6.to_json(),
            f7.to_json(),
            dss_bench::json::table1_json(&table1(seed)),
            dss_bench::json::rejections_json(&rej),
        );
        std::fs::write(&path, json).expect("write JSON results");
        println!("\nwrote JSON results to {path}");
    }

    if let Some(path) = trace_path {
        dss_bench::trace::write_snapshot(&path);
    }
}
