//! Flat-latency smoke gate for the indexed plan search (E11).
//!
//! Registers `--count` template subscriptions (default 100 000, env
//! `DSS_SMOKE_SUBS`) and fails, with a non-zero exit, when
//!
//! * per-registration latency is not near-flat — last-decile p99 more
//!   than `--ratio` (default 2.5, env `DSS_SMOKE_FLAT_RATIO`) times the
//!   first-decile p99, or
//! * any indexed-vs-full-scan checkpoint probe produced a different
//!   winning plan, or
//! * the index did not prune any candidates at the final checkpoint.
//!
//! The measured curve is written to `BENCH_subscribe.json` (override with
//! `--out`). `DSS_BENCH_FULL=1` additionally runs the million-
//! subscription tier.

use dss_bench::registration::{registration_curve, run_tier, RegistrationCurve};

fn arg_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1).cloned())
}

fn env_or<T: std::str::FromStr>(args: &[String], flag: &str, env: &str, default: T) -> T {
    arg_value(args, flag)
        .or_else(|| std::env::var(env).ok())
        .and_then(|s| s.trim().parse().ok())
        .unwrap_or(default)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let count: usize = env_or(&args, "--count", "DSS_SMOKE_SUBS", 100_000);
    let ratio: f64 = env_or(&args, "--ratio", "DSS_SMOKE_FLAT_RATIO", 2.5);
    let out = arg_value(&args, "--out").unwrap_or_else(|| "BENCH_subscribe.json".to_string());
    let seed: u64 = env_or(&args, "--seed", "DSS_SMOKE_SEED", 7);

    println!("registration smoke: {count} subscriptions, flat-ratio bound {ratio} (seed {seed})");
    let mut curve = RegistrationCurve {
        seed,
        tiers: vec![run_tier(seed, count)],
    };
    if std::env::var("DSS_BENCH_FULL").is_ok_and(|v| v == "1") {
        println!("DSS_BENCH_FULL=1: adding the million-subscription tier");
        curve
            .tiers
            .extend(registration_curve(seed, &[1_000_000]).tiers);
    }
    for tier in &curve.tiers {
        println!("  {}", tier.render());
        for c in &tier.checkpoints {
            println!(
                "    checkpoint @{:>9}: {:>9} flows deployed ({} shareable, {} distinct chains), \
                 candidates {} full / {} indexed, plans identical: {}",
                c.installed,
                c.deployed_flows,
                c.shareable_flows,
                c.distinct_chains,
                c.full_scan_candidates,
                c.indexed_candidates,
                c.plans_identical,
            );
        }
    }
    std::fs::write(&out, curve.to_json()).expect("write BENCH_subscribe.json");
    println!("wrote {out}");

    let mut failures = Vec::new();
    for tier in &curve.tiers {
        if !(tier.flat_ratio <= ratio) {
            failures.push(format!(
                "{} subs: flat ratio {:.2} exceeds bound {ratio}",
                tier.subscriptions, tier.flat_ratio
            ));
        }
        for c in &tier.checkpoints {
            if !c.plans_identical {
                failures.push(format!(
                    "{} subs @{}: indexed and full-scan plans diverge",
                    tier.subscriptions, c.installed
                ));
            }
            if c.indexed_candidates > c.full_scan_candidates {
                failures.push(format!(
                    "{} subs @{}: index matched more candidates ({}) than the full scan ({})",
                    tier.subscriptions, c.installed, c.indexed_candidates, c.full_scan_candidates
                ));
            }
        }
        if let Some(last) = tier.checkpoints.last() {
            if last.indexed_candidates >= last.full_scan_candidates {
                failures.push(format!(
                    "{} subs: index pruned nothing at the final checkpoint ({} vs {})",
                    tier.subscriptions, last.indexed_candidates, last.full_scan_candidates
                ));
            }
        }
    }
    if failures.is_empty() {
        println!("registration smoke OK");
    } else {
        for f in &failures {
            eprintln!("FAIL: {f}");
        }
        std::process::exit(1);
    }
}
