//! Regenerates the Section-4 rejection experiment: scenario 2 with peer CPU
//! capped at 10 % and connections at 1 Mbit/s.

use dss_bench::experiments::{rejections, DEFAULT_SEED};
use dss_core::Strategy;

fn main() {
    let (args, trace_path) = dss_bench::trace::split_trace_arg(std::env::args().skip(1).collect());
    let seed = args
        .first()
        .and_then(|s| s.parse().ok())
        .unwrap_or(DEFAULT_SEED);
    if trace_path.is_some() {
        dss_telemetry::reset();
        dss_telemetry::set_enabled(true);
    }
    let rej = rejections(seed);
    println!("rejections with 10 % CPU / 1 Mbit/s caps (scenario 2, 100 queries):");
    for (strategy, (acc, rejd)) in Strategy::ALL.into_iter().zip(rej) {
        println!("  {strategy:>15}: {acc} accepted, {rejd} rejected");
    }
    println!("  paper          : 53/65 accepted, 47 / 35 / 2 rejected");
    if let Some(path) = trace_path {
        dss_bench::trace::write_snapshot(&path);
    }
}
