//! Widening-handoff bench (E12): delta migration vs full rebuild.
//!
//! Incremental window maintenance (PR 8) makes widening and
//! re-subscription move O(delta) state — the open window accumulators —
//! instead of forcing an O(window extent) replay to re-warm the rebuilt
//! chain. This module measures exactly that claim on shared stream DAGs:
//! `flows` sinks (1/4/16) share one sliding count-window aggregation
//! chain; after `warm_items` the widening patch splices a restore
//! selection in front of every chain (empty keep-prefix, whole chain
//! rebuilds) and the re-registration runs twice on identically warmed
//! DAGs —
//!
//! * the **delta** path (`FlowDag::reregister_migrating_batch`), whose
//!   [`MigrationReport`](dss_engine::MigrationReport) counts the open
//!   windows actually moved, and
//! * the **rebuild** path (plain `reregister` per flow), which drops the
//!   state; the raw-item extent a replay would need to re-accumulate it
//!   is derived from the window grid.
//!
//! The headline: `items_moved` stays at the open-position count (delta)
//! no matter how large the window grows, while the rebuild extent scales
//! linearly with the window size — and the post-handoff outputs are
//! byte-identical to a chain that ran the widened operator list over the
//! entire stream.

use std::time::Instant;

use dss_network::{FlowDag, FlowOp};
use dss_predicate::{Atom, CompOp, PredicateGraph};
use dss_properties::{AggOp, AggregationSpec, Operator, ResultFilter, WindowSpec};
use dss_xml::writer::node_to_string;
use dss_xml::{Decimal, Node, Path};

use crate::json::number;

/// Sharing fan-outs measured (the ISSUE's 1/4/16-flow shared DAGs).
pub const FLOW_TIERS: [usize; 3] = [1, 4, 16];

/// Count-window sizes measured; the rebuild extent grows with these
/// while the migrated delta must not.
pub const WINDOW_SIZES: [i64; 3] = [16, 64, 256];

/// Open positions per chain: sliding count windows with
/// `step = size / POSITIONS`, so every config keeps the same number of
/// concurrently open windows regardless of window size.
pub const POSITIONS: i64 = 4;

fn item(i: usize) -> Node {
    Node::elem(
        "photon",
        vec![
            Node::leaf("en", format!("{}", 1.0 + (i % 10) as f64 / 10.0)),
            Node::leaf("det_time", i.to_string()),
        ],
    )
}

/// Sum of `en` over a sliding count window of `size` items stepping by
/// `size / POSITIONS`.
fn agg(size: i64) -> FlowOp {
    FlowOp::Standard(Operator::Aggregation(AggregationSpec {
        op: AggOp::Sum,
        element: "en".parse::<Path>().expect("static path"),
        window: WindowSpec::count(
            Decimal::from_int(size),
            Some(Decimal::from_int(size / POSITIONS)),
        )
        .expect("valid count window"),
        pre_selection: PredicateGraph::new(),
        result_filter: ResultFilter::none(),
    }))
}

/// The widening restore op: a selection every item passes (`en ≥ 0.5`
/// while the stream emits `en ≥ 1.0`), spliced in at position 0 so the
/// keep-prefix is empty and the whole stateful chain rebuilds.
fn restore() -> FlowOp {
    FlowOp::Standard(Operator::Selection(PredicateGraph::from_atoms(&[
        Atom::var_const(
            "en".parse::<Path>().expect("static path"),
            CompOp::Ge,
            "0.5".parse::<Decimal>().expect("static decimal"),
        ),
    ])))
}

/// Registers `flows` identical chains and feeds `warm` items.
fn warmed(flows: usize, size: i64, warm: usize) -> FlowDag {
    let mut dag = FlowDag::new();
    let chain = vec![agg(size)];
    for f in 0..flows {
        dag.register(f, &chain);
    }
    for i in 0..warm {
        dag.process_into(&item(i), &mut |_, _| {});
    }
    dag
}

/// Raw items a replay-based rebuild must re-accumulate to restore the
/// open windows after `warm` items: for every open window start `s`
/// (grid multiples of `size / POSITIONS` with `s + size > warm - 1`),
/// the items `[s, warm)` already consumed into it.
pub fn rebuild_extent(size: i64, warm: usize) -> u64 {
    let mu = size / POSITIONS;
    let last = warm as i64 - 1;
    if last < 0 {
        return 0;
    }
    let mut total = 0u64;
    let mut s = 0i64;
    while s <= last {
        if s + size > last {
            total += (warm as i64 - s) as u64;
        }
        s += mu;
    }
    total
}

/// One (flows, window size) measurement.
#[derive(Debug, Clone)]
pub struct HandoffRecord {
    /// Sinks sharing the stateful chain.
    pub flows: usize,
    /// Count-window size Δ (items).
    pub window_size: i64,
    /// Items processed before the widening patch.
    pub warm_items: usize,
    /// Open windows the delta path moved (`MigrationReport::items_moved`).
    pub items_moved: u64,
    /// Snapshots adopted — 1 per config: the shared chain exports once no
    /// matter how many sinks ride it.
    pub ops_migrated: u64,
    /// Snapshots dropped — must be 0: the specs are identical.
    pub ops_dropped: u64,
    /// Raw-item extent a replay-based rebuild needs for the same state.
    pub rebuild_items: u64,
    /// Wall time of the migrating batch re-registration.
    pub delta_us: f64,
    /// Wall time of the plain (state-dropping) re-registrations.
    pub rebuild_us: f64,
    /// Post-handoff outputs byte-identical to a continuous run of the
    /// widened chain over the whole stream.
    pub byte_exact: bool,
}

/// Runs one config: warm, widen via both paths, verify byte-exactness of
/// the delta path against a continuous reference.
pub fn run_handoff(flows: usize, size: i64) -> HandoffRecord {
    let warm = (2 * size + 5) as usize;
    let tail = size as usize;
    let new: Vec<FlowOp> = vec![restore(), agg(size)];

    // Delta path, then continue the stream and record per-flow outputs.
    let mut dag = warmed(flows, size, warm);
    let batch: Vec<(usize, &[FlowOp])> = (0..flows).map(|f| (f, new.as_slice())).collect();
    let t0 = Instant::now();
    let report = dag.reregister_migrating_batch(&batch);
    let delta_us = t0.elapsed().as_secs_f64() * 1e6;
    let mut got: Vec<(usize, String)> = Vec::new();
    for i in warm..warm + tail {
        dag.process_into(&item(i), &mut |f, n| got.push((f, node_to_string(n))));
    }

    // Continuous reference: the widened chain over the whole stream.
    let mut reference = FlowDag::new();
    for f in 0..flows {
        reference.register(f, &new);
    }
    let mut expect: Vec<(usize, String)> = Vec::new();
    for i in 0..warm + tail {
        reference.process_into(&item(i), &mut |f, n| {
            if i >= warm {
                expect.push((f, node_to_string(n)));
            }
        });
    }

    // Rebuild path: identically warmed DAG, plain re-registration.
    let mut plain = warmed(flows, size, warm);
    let t0 = Instant::now();
    for f in 0..flows {
        plain.reregister(f, &new);
    }
    let rebuild_us = t0.elapsed().as_secs_f64() * 1e6;

    HandoffRecord {
        flows,
        window_size: size,
        warm_items: warm,
        items_moved: report.items_moved,
        ops_migrated: report.ops_migrated,
        ops_dropped: report.ops_dropped,
        rebuild_items: rebuild_extent(size, warm),
        delta_us,
        rebuild_us,
        byte_exact: got == expect,
    }
}

/// The full 1/4/16-flow × window-size matrix.
pub fn run_matrix() -> Vec<HandoffRecord> {
    let mut records = Vec::new();
    for &flows in &FLOW_TIERS {
        for &size in &WINDOW_SIZES {
            records.push(run_handoff(flows, size));
        }
    }
    records
}

/// The CI gate over a measured matrix. Empty means pass; each entry is
/// one violated invariant:
///
/// * every handoff must be byte-exact and drop nothing;
/// * per flow tier, `items_moved` at the largest window must not exceed
///   the smallest window's (+1 for grid-alignment slack) — moved state
///   scales with the *delta* (open positions), never the window size;
/// * per flow tier, the rebuild extent must grow with the window size —
///   the baseline the delta path is beating.
pub fn gate(records: &[HandoffRecord]) -> Vec<String> {
    let mut failures = Vec::new();
    for r in records {
        if !r.byte_exact {
            failures.push(format!(
                "{} flows, window {}: post-handoff outputs diverge from the continuous run",
                r.flows, r.window_size
            ));
        }
        if r.ops_dropped > 0 {
            failures.push(format!(
                "{} flows, window {}: {} snapshot(s) dropped on an identical-spec handoff",
                r.flows, r.window_size, r.ops_dropped
            ));
        }
    }
    for &flows in &FLOW_TIERS {
        let tier: Vec<&HandoffRecord> = records.iter().filter(|r| r.flows == flows).collect();
        let (Some(smallest), Some(largest)) = (tier.first(), tier.last()) else {
            continue;
        };
        if largest.items_moved > smallest.items_moved + 1 {
            failures.push(format!(
                "{} flows: items moved scales with window size ({} @ {} vs {} @ {}) — \
                 the delta path is not O(delta)",
                flows,
                largest.items_moved,
                largest.window_size,
                smallest.items_moved,
                smallest.window_size
            ));
        }
        if largest.rebuild_items <= smallest.rebuild_items {
            failures.push(format!(
                "{} flows: rebuild extent did not grow with the window ({} @ {} vs {} @ {})",
                flows,
                largest.rebuild_items,
                largest.window_size,
                smallest.rebuild_items,
                smallest.window_size
            ));
        }
    }
    failures
}

impl HandoffRecord {
    fn to_json(&self) -> String {
        format!(
            "{{\"flows\":{},\"window_size\":{},\"warm_items\":{},\"items_moved\":{},\
             \"ops_migrated\":{},\"ops_dropped\":{},\"rebuild_items\":{},\
             \"delta_us\":{},\"rebuild_us\":{},\"byte_exact\":{}}}",
            self.flows,
            self.window_size,
            self.warm_items,
            self.items_moved,
            self.ops_migrated,
            self.ops_dropped,
            self.rebuild_items,
            number(self.delta_us),
            number(self.rebuild_us),
            self.byte_exact,
        )
    }

    /// One human-readable summary line.
    pub fn render(&self) -> String {
        format!(
            "{:>2} flows, window {:>4}: moved {:>2} open window(s) vs {:>4} replay items, \
             handoff {:>7.1} µs vs rebuild {:>7.1} µs, byte-exact: {}",
            self.flows,
            self.window_size,
            self.items_moved,
            self.rebuild_items,
            self.delta_us,
            self.rebuild_us,
            self.byte_exact,
        )
    }
}

/// JSON document written to `BENCH_widening.json`.
pub fn matrix_to_json(records: &[HandoffRecord]) -> String {
    format!(
        "{{\"bench\":\"widening_handoff\",\"positions\":{},\"records\":[{}]}}\n",
        POSITIONS,
        records
            .iter()
            .map(HandoffRecord::to_json)
            .collect::<Vec<_>>()
            .join(","),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_passes_its_own_gate() {
        let records = run_matrix();
        assert_eq!(records.len(), FLOW_TIERS.len() * WINDOW_SIZES.len());
        let failures = gate(&records);
        assert!(failures.is_empty(), "{failures:?}");
        for r in &records {
            // The shared chain exports exactly one snapshot no matter how
            // many sinks ride it — the sharing win carries over to the
            // handoff.
            assert_eq!(r.ops_migrated, 1, "{r:?}");
            assert!(r.items_moved > 0, "{r:?}");
            assert!(
                r.items_moved <= (POSITIONS + 1) as u64,
                "moved more than the open positions: {r:?}"
            );
            assert!(r.rebuild_items as i64 >= r.window_size, "{r:?}");
        }
    }

    #[test]
    fn rebuild_extent_scales_with_window() {
        let small = rebuild_extent(16, 37);
        let large = rebuild_extent(256, 517);
        assert!(small > 0 && large >= 4 * small, "{small} vs {large}");
    }

    #[test]
    fn matrix_json_shape() {
        let j = matrix_to_json(&run_matrix());
        assert!(j.contains("\"bench\":\"widening_handoff\""));
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        assert_eq!(j.matches('[').count(), j.matches(']').count());
    }
}
