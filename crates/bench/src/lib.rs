//! Benchmark harness regenerating every table and figure of the paper's
//! evaluation (Section 4), plus Criterion micro-benchmarks of the core
//! algorithms.
//!
//! Experiment binaries (see also EXPERIMENTS.md):
//!
//! * `fig6` — Figure 6: scenario 1 CPU load / connection traffic
//! * `fig7` — Figure 7: scenario 2 CPU load / accumulated traffic
//! * `table1` — Table 1: query registration times
//! * `rejections` — the capacity-capped admission experiment
//! * `experiments` — everything above plus shape verdicts

pub mod experiments;
pub mod json;
pub mod overhead;
pub mod registration;
pub mod report;
pub mod trace;
pub mod widening;
