//! `--trace <path>` support for the experiment binaries.
//!
//! A binary passes its raw args through [`split_trace_arg`]; when the flag
//! is present it flips the global telemetry switch around the sections it
//! wants captured and finally calls [`write_snapshot`]. With the
//! `telemetry` feature compiled out the switch is a no-op and the written
//! document is empty-but-valid.

/// Splits `--trace <path>` out of the raw argument list, returning the
/// remaining args and the path. Panics with a usage message when the flag
/// is present without a path.
pub fn split_trace_arg(args: Vec<String>) -> (Vec<String>, Option<String>) {
    let mut rest = Vec::with_capacity(args.len());
    let mut path = None;
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        if a == "--trace" {
            path = Some(it.next().expect("--trace requires a file path"));
        } else {
            rest.push(a);
        }
    }
    (rest, path)
}

/// Disables recording and writes the accumulated snapshot (metrics + span
/// trees, `schemas/trace.schema.json` format) to `path`.
pub fn write_snapshot(path: &str) {
    dss_telemetry::set_enabled(false);
    std::fs::write(path, dss_telemetry::snapshot_json())
        .unwrap_or_else(|e| panic!("cannot write trace to {path}: {e}"));
    eprintln!("wrote telemetry trace to {path}");
}
