//! Registration-latency-vs-installed-subscriptions curve (E11).
//!
//! The catalog index (PR 6) makes candidate lookup during `Subscribe`
//! sublinear in the number of installed streams: per-registration latency
//! should stay near-flat as the subscription population grows, while the
//! full-scan reference degrades linearly with the deployed flow table.
//! This module registers `n` template subscriptions, records every
//! registration's wall time, summarizes per-decile percentiles, and at a
//! few population checkpoints probes the *same* query through both the
//! indexed search and `subscribe_full_scan` — asserting byte-identical
//! winning plans and recording how many candidates the index pruned.
//!
//! Tiers: 1k/10k/100k by default; the 1M tier is gated behind
//! `DSS_BENCH_FULL=1` (it takes minutes, not seconds).

use std::time::Instant;

use dss_core::{subscribe_full_scan, subscribe_with, SearchOrder, Strategy, StreamGlobe};
use dss_network::grid_topology;
use dss_rass::{default_photons, QueryTemplateGenerator, ValueSets};
use dss_wxquery::compile_query;

use crate::json::number;

/// Grid dimension for the registration workload: 36 super-peers, large
/// enough for non-trivial routes, small enough that the population (not
/// the network) dominates.
pub const GRID_DIM: usize = 6;

/// Default tier sizes; `full_tiers` appends the 1M tier.
pub const DEFAULT_TIERS: [usize; 3] = [1_000, 10_000, 100_000];

/// Tier list honoring `DSS_BENCH_FULL=1` (adds the million-subscription
/// tier).
pub fn full_tiers() -> Vec<usize> {
    let mut tiers = DEFAULT_TIERS.to_vec();
    if std::env::var("DSS_BENCH_FULL").is_ok_and(|v| v == "1") {
        tiers.push(1_000_000);
    }
    tiers
}

/// Value sets for the registration workload: a trimmed-down version of
/// the defaults. Section 4's premise is that many subscribers draw their
/// parameters from a *predefined set of values*, so at large populations
/// almost every registration is served by an already-installed stream.
/// With these sets the distinct-chain space saturates within the first
/// few thousand registrations, after which the catalog's per-chain
/// grouping keeps candidate lookup — and hence registration latency —
/// flat no matter how many subscriptions follow.
pub fn smoke_sets() -> ValueSets {
    let d = ValueSets::default();
    ValueSets {
        ra_ranges: d.ra_ranges[..2].to_vec(),
        dec_ranges: d.dec_ranges[..2].to_vec(),
        en_cuts: d.en_cuts[..3].to_vec(),
        windows: d.windows[..2].to_vec(),
        agg_ops: d.agg_ops[..2].to_vec(),
        projections: d.projections[..2].to_vec(),
    }
}

/// One indexed-vs-full-scan probe at a population checkpoint.
#[derive(Debug, Clone)]
pub struct Checkpoint {
    /// Subscriptions registered when the probe ran.
    pub installed: usize,
    /// Total deployed flows (including per-subscription delivery flows).
    pub deployed_flows: usize,
    /// Shareable (indexed) flows — saturates once the chain space is
    /// covered at every reachable tap constellation.
    pub shareable_flows: usize,
    /// Distinct operator chains the catalog has interned — the quantity
    /// indexed lookup scales with.
    pub distinct_chains: usize,
    /// Candidate streams the indexed search matched properties against.
    pub indexed_candidates: usize,
    /// Candidate streams the full scan matched properties against.
    pub full_scan_candidates: usize,
    /// Peers visited (identical for both by construction).
    pub nodes_visited: usize,
    /// `Debug` output of both winning plans compared byte-for-byte.
    pub plans_identical: bool,
}

/// Latency summary for one tier.
#[derive(Debug, Clone)]
pub struct TierReport {
    /// Requested subscription count.
    pub subscriptions: usize,
    /// Successful registrations (template queries essentially never fail
    /// without admission control, but the count is kept honest).
    pub registered: usize,
    /// Per-decile median registration latency, µs (10 entries, in
    /// registration order).
    pub decile_p50_us: Vec<f64>,
    /// Per-decile p99 registration latency, µs.
    pub decile_p99_us: Vec<f64>,
    /// Flat-latency headline: last-decile p99 / first-decile p99.
    pub flat_ratio: f64,
    /// Probes at ~10 %, ~50 % and 100 % of the population.
    pub checkpoints: Vec<Checkpoint>,
    /// Wall time for the whole tier.
    pub total_secs: f64,
}

/// The full curve across tiers.
#[derive(Debug, Clone)]
pub struct RegistrationCurve {
    pub seed: u64,
    pub tiers: Vec<TierReport>,
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// Runs one probe query through both search implementations against the
/// current deployment.
fn probe(system: &StreamGlobe, text: &str, v_q_name: &str, installed: usize) -> Checkpoint {
    let compiled = compile_query(text).expect("probe query compiles");
    let v_q = system.topology().expect_node(v_q_name);
    let (ip, is) = subscribe_with(
        system.state(),
        &compiled,
        v_q,
        v_q,
        SearchOrder::Bfs,
        false,
        false,
    )
    .expect("indexed probe plans");
    let (fp, fs) = subscribe_full_scan(
        system.state(),
        &compiled,
        v_q,
        v_q,
        SearchOrder::Bfs,
        false,
        false,
    )
    .expect("full-scan probe plans");
    Checkpoint {
        installed,
        deployed_flows: system.deployment().len(),
        shareable_flows: system.deployment().shareable_len(),
        distinct_chains: system.deployment().distinct_chains(),
        indexed_candidates: is.candidates_matched,
        full_scan_candidates: fs.candidates_matched,
        nodes_visited: is.nodes_visited.max(fs.nodes_visited),
        plans_identical: is.nodes_visited == fs.nodes_visited
            && format!("{ip:?}") == format!("{fp:?}"),
    }
}

/// Registers `n` template subscriptions and summarizes the latency curve.
pub fn run_tier(seed: u64, n: usize) -> TierReport {
    let peers = GRID_DIM * GRID_DIM;
    let mut system = StreamGlobe::new(grid_topology(GRID_DIM, GRID_DIM));
    system
        .register_stream("photons", "SP0", default_photons(seed, 200), 60.0)
        .expect("stream registers");
    let mut tgen = QueryTemplateGenerator::with_sets(seed, "photons", smoke_sets());
    let marks = [n.div_ceil(10), n.div_ceil(2), n];
    let mut lat_us = Vec::with_capacity(n);
    let mut registered = 0usize;
    let mut checkpoints = Vec::new();
    let tier_start = Instant::now();
    for i in 0..n {
        let text = tgen.next_query();
        let peer = format!("SP{}", (i * 13 + 5) % peers);
        let t0 = Instant::now();
        let ok = system
            .register_query(format!("q{i}"), &text, &peer, Strategy::StreamSharing)
            .is_ok();
        lat_us.push(t0.elapsed().as_secs_f64() * 1e6);
        registered += ok as usize;
        if marks.contains(&(i + 1)) {
            // The probe reuses the *registered* query's text: the indexed
            // search must reproduce the exact plan the full scan finds
            // even when a perfect cover is installed.
            checkpoints.push(probe(&system, &text, &peer, i + 1));
        }
    }
    let total_secs = tier_start.elapsed().as_secs_f64();

    let decile = lat_us.len().div_ceil(10).max(1);
    let (mut decile_p50_us, mut decile_p99_us) = (Vec::new(), Vec::new());
    for chunk in lat_us.chunks(decile) {
        let mut sorted = chunk.to_vec();
        sorted.sort_by(f64::total_cmp);
        decile_p50_us.push(percentile(&sorted, 0.50));
        decile_p99_us.push(percentile(&sorted, 0.99));
    }
    let flat_ratio = match (decile_p99_us.first(), decile_p99_us.last()) {
        (Some(&first), Some(&last)) if first > 0.0 => last / first,
        _ => f64::NAN,
    };
    TierReport {
        subscriptions: n,
        registered,
        decile_p50_us,
        decile_p99_us,
        flat_ratio,
        checkpoints,
        total_secs,
    }
}

/// Runs every tier with a fresh system each.
pub fn registration_curve(seed: u64, tiers: &[usize]) -> RegistrationCurve {
    RegistrationCurve {
        seed,
        tiers: tiers.iter().map(|&n| run_tier(seed, n)).collect(),
    }
}

impl Checkpoint {
    fn to_json(&self) -> String {
        format!(
            "{{\"installed\":{},\"deployed_flows\":{},\"shareable_flows\":{},\
             \"distinct_chains\":{},\"indexed_candidates\":{},\
             \"full_scan_candidates\":{},\"nodes_visited\":{},\"plans_identical\":{}}}",
            self.installed,
            self.deployed_flows,
            self.shareable_flows,
            self.distinct_chains,
            self.indexed_candidates,
            self.full_scan_candidates,
            self.nodes_visited,
            self.plans_identical,
        )
    }
}

impl TierReport {
    fn to_json(&self) -> String {
        let list = |v: &[f64]| v.iter().map(|&x| number(x)).collect::<Vec<_>>().join(",");
        format!(
            "{{\"subscriptions\":{},\"registered\":{},\"decile_p50_us\":[{}],\
             \"decile_p99_us\":[{}],\"flat_ratio\":{},\"total_secs\":{},\"checkpoints\":[{}]}}",
            self.subscriptions,
            self.registered,
            list(&self.decile_p50_us),
            list(&self.decile_p99_us),
            number(self.flat_ratio),
            number(self.total_secs),
            self.checkpoints
                .iter()
                .map(Checkpoint::to_json)
                .collect::<Vec<_>>()
                .join(","),
        )
    }

    /// One human-readable summary line.
    pub fn render(&self) -> String {
        let last = self.checkpoints.last();
        format!(
            "{:>9} subs: p50 {:>7.1} -> {:>7.1} µs, p99 {:>7.1} -> {:>7.1} µs, \
             flat ratio {:>5.2}, candidates {} -> {} ({:.1} s)",
            self.subscriptions,
            self.decile_p50_us.first().copied().unwrap_or(0.0),
            self.decile_p50_us.last().copied().unwrap_or(0.0),
            self.decile_p99_us.first().copied().unwrap_or(0.0),
            self.decile_p99_us.last().copied().unwrap_or(0.0),
            self.flat_ratio,
            last.map_or(0, |c| c.full_scan_candidates),
            last.map_or(0, |c| c.indexed_candidates),
            self.total_secs,
        )
    }
}

impl RegistrationCurve {
    /// JSON document written to `BENCH_subscribe.json`.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"bench\":\"subscribe_registration\",\"seed\":{},\"grid_peers\":{},\"tiers\":[{}]}}\n",
            self.seed,
            GRID_DIM * GRID_DIM,
            self.tiers
                .iter()
                .map(TierReport::to_json)
                .collect::<Vec<_>>()
                .join(","),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tier_report_probes_agree_and_prune() {
        let report = run_tier(11, 400);
        assert_eq!(report.registered, 400);
        assert_eq!(report.decile_p50_us.len(), 10);
        assert_eq!(report.decile_p99_us.len(), 10);
        assert!(report.flat_ratio.is_finite());
        assert_eq!(report.checkpoints.len(), 3);
        for c in &report.checkpoints {
            assert!(c.plans_identical, "{c:?}");
            assert!(c.indexed_candidates <= c.full_scan_candidates, "{c:?}");
        }
        // With 400 template subscriptions installed the delivery flows
        // vastly outnumber shareable streams: the index must prune.
        let last = report.checkpoints.last().unwrap();
        assert!(
            last.indexed_candidates < last.full_scan_candidates,
            "expected pruning at 400 subscriptions: {last:?}"
        );
    }

    #[test]
    fn curve_json_shape() {
        let curve = registration_curve(11, &[60]);
        let j = curve.to_json();
        assert!(j.contains("\"bench\":\"subscribe_registration\""));
        assert!(j.contains("\"tiers\":["));
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        assert_eq!(j.matches('[').count(), j.matches(']').count());
    }
}
