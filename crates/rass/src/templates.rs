//! WXQuery template generator for the evaluation workloads.
//!
//! Section 4: "The queries were generated using query templates for
//! selection, projection, and aggregation queries. Constant values, e.g.,
//! in selection predicates or data window definitions, were chosen
//! uniformly from a predefined set of values to enable a certain degree of
//! shareability."

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Template kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TemplateKind {
    /// Region (+ optional energy-cut) selection returning most elements.
    Selection,
    /// Projection to a subset of elements, no predicate.
    Projection,
    /// Window-based aggregation over a region.
    Aggregation,
}

/// Predefined value sets (the "predefined set of values" of Section 4).
/// Narrow sets create many shareable queries; wide sets fewer.
#[derive(Debug, Clone)]
pub struct ValueSets {
    /// Candidate (ra_min, ra_max) ranges.
    pub ra_ranges: Vec<(f64, f64)>,
    /// Candidate (dec_min, dec_max) ranges.
    pub dec_ranges: Vec<(f64, f64)>,
    /// Candidate minimum-energy cuts (None entries mean "no cut").
    pub en_cuts: Vec<Option<f64>>,
    /// Candidate (window size, step) pairs for `det_time diff` windows.
    /// All pairs satisfy `Δ mod µ = 0`, so produced aggregates are
    /// composable.
    pub windows: Vec<(u32, u32)>,
    /// Candidate aggregation operators.
    pub agg_ops: Vec<&'static str>,
    /// Candidate projection element subsets (paths below `photon`).
    pub projections: Vec<Vec<&'static str>>,
}

impl Default for ValueSets {
    fn default() -> ValueSets {
        ValueSets {
            ra_ranges: vec![
                (120.0, 138.0), // Vela
                (130.5, 135.5), // RX J0852.0-4622
                (100.0, 140.0),
                (110.0, 130.0),
                (125.0, 145.0),
            ],
            dec_ranges: vec![
                (-49.0, -40.0), // Vela
                (-48.0, -45.0), // RX J0852.0-4622
                (-55.0, -35.0),
                (-50.0, -42.0),
            ],
            en_cuts: vec![None, Some(0.5), Some(1.0), Some(1.3), Some(1.5)],
            windows: vec![(20, 10), (40, 20), (60, 20), (80, 40), (120, 40)],
            agg_ops: vec!["avg", "sum", "count", "min", "max"],
            projections: vec![
                vec!["coord/cel/ra", "coord/cel/dec", "phc", "en", "det_time"],
                vec!["coord/cel/ra", "coord/cel/dec", "en", "det_time"],
                vec!["coord/cel/ra", "coord/cel/dec", "en"],
                vec!["en", "det_time"],
                vec!["coord", "en", "det_time"],
            ],
        }
    }
}

/// Generates WXQuery subscription texts from the templates.
#[derive(Debug)]
pub struct QueryTemplateGenerator {
    sets: ValueSets,
    rng: StdRng,
    /// Stream the generated queries reference.
    stream: String,
    counter: usize,
}

impl QueryTemplateGenerator {
    /// Generator over the default value sets for a given stream name.
    pub fn new(seed: u64, stream: impl Into<String>) -> QueryTemplateGenerator {
        QueryTemplateGenerator::with_sets(seed, stream, ValueSets::default())
    }

    /// Generator with custom value sets.
    pub fn with_sets(
        seed: u64,
        stream: impl Into<String>,
        sets: ValueSets,
    ) -> QueryTemplateGenerator {
        QueryTemplateGenerator {
            sets,
            rng: StdRng::seed_from_u64(seed),
            stream: stream.into(),
            counter: 0,
        }
    }

    fn pick<'a, T>(rng: &mut StdRng, v: &'a [T]) -> &'a T {
        &v[rng.gen_range(0..v.len())]
    }

    /// Generates one query of a uniformly chosen kind.
    pub fn next_query(&mut self) -> String {
        let kind = match self.rng.gen_range(0..3) {
            0 => TemplateKind::Selection,
            1 => TemplateKind::Projection,
            _ => TemplateKind::Aggregation,
        };
        self.next_query_of(kind)
    }

    /// Generates one query of the given kind.
    pub fn next_query_of(&mut self, kind: TemplateKind) -> String {
        self.counter += 1;
        match kind {
            TemplateKind::Selection => self.selection_query(),
            TemplateKind::Projection => self.projection_query(),
            TemplateKind::Aggregation => self.aggregation_query(),
        }
    }

    fn region_predicate(&mut self) -> String {
        let (ra_min, ra_max) = *Self::pick(&mut self.rng, &self.sets.ra_ranges);
        let (dec_min, dec_max) = *Self::pick(&mut self.rng, &self.sets.dec_ranges);
        format!(
            "$p/coord/cel/ra >= {ra_min:.1} and $p/coord/cel/ra <= {ra_max:.1} \
             and $p/coord/cel/dec >= {dec_min:.1} and $p/coord/cel/dec <= {dec_max:.1}"
        )
    }

    fn selection_query(&mut self) -> String {
        let mut predicate = self.region_predicate();
        if let Some(cut) = *Self::pick(&mut self.rng, &self.sets.en_cuts) {
            predicate.push_str(&format!(" and $p/en >= {cut:.1}"));
        }
        let stream = &self.stream;
        format!(
            "<{stream}>\n{{ for $p in stream(\"{stream}\")/{stream}/photon\n  \
             where {predicate}\n  \
             return <hit> {{ $p/coord/cel/ra }} {{ $p/coord/cel/dec }} \
             {{ $p/phc }} {{ $p/en }} {{ $p/det_time }} </hit> }}\n</{stream}>"
        )
    }

    fn projection_query(&mut self) -> String {
        let paths = Self::pick(&mut self.rng, &self.sets.projections).clone();
        let body: String = paths.iter().map(|p| format!("{{ $p/{p} }} ")).collect();
        let stream = &self.stream;
        format!(
            "<{stream}>\n{{ for $p in stream(\"{stream}\")/{stream}/photon\n  \
             return <slim> {body}</slim> }}\n</{stream}>"
        )
    }

    fn aggregation_query(&mut self) -> String {
        let (ra_min, ra_max) = *Self::pick(&mut self.rng, &self.sets.ra_ranges);
        let (dec_min, dec_max) = *Self::pick(&mut self.rng, &self.sets.dec_ranges);
        let (size, step) = *Self::pick(&mut self.rng, &self.sets.windows);
        let op = *Self::pick(&mut self.rng, &self.sets.agg_ops);
        let stream = &self.stream;
        format!(
            "<{stream}>\n{{ for $w in stream(\"{stream}\")/{stream}/photon\n  \
             [coord/cel/ra >= {ra_min:.1} and coord/cel/ra <= {ra_max:.1} \
             and coord/cel/dec >= {dec_min:.1} and coord/cel/dec <= {dec_max:.1}]\n  \
             |det_time diff {size} step {step}|\n  \
             let $a := {op}($w/en)\n  \
             return <{op}_en> {{ $a }} </{op}_en> }}\n</{stream}>"
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dss_wxquery::compile_query;

    #[test]
    fn generated_queries_compile() {
        let mut g = QueryTemplateGenerator::new(11, "photons");
        for i in 0..100 {
            let q = g.next_query();
            compile_query(&q).unwrap_or_else(|e| panic!("query {i} invalid: {e}\n{q}"));
        }
    }

    #[test]
    fn each_kind_produces_its_operator() {
        let mut g = QueryTemplateGenerator::new(5, "photons");
        let sel = compile_query(&g.next_query_of(TemplateKind::Selection)).unwrap();
        assert!(sel.properties.inputs()[0].selection().is_some());
        assert!(sel.aggregation.is_none());

        let proj = compile_query(&g.next_query_of(TemplateKind::Projection)).unwrap();
        assert!(proj.properties.inputs()[0].selection().is_none());
        assert!(proj.properties.inputs()[0].projection().is_some());

        let agg = compile_query(&g.next_query_of(TemplateKind::Aggregation)).unwrap();
        assert!(agg.aggregation.is_some());
    }

    #[test]
    fn deterministic_given_seed() {
        let mut a = QueryTemplateGenerator::new(3, "photons");
        let mut b = QueryTemplateGenerator::new(3, "photons");
        for _ in 0..20 {
            assert_eq!(a.next_query(), b.next_query());
        }
    }

    #[test]
    fn constants_come_from_the_value_sets() {
        // With the small default sets, 50 queries must produce duplicate
        // predicates — the "degree of shareability" the paper engineers.
        let mut g = QueryTemplateGenerator::new(1, "photons");
        let queries: Vec<String> = (0..50).map(|_| g.next_query()).collect();
        let unique: std::collections::BTreeSet<&String> = queries.iter().collect();
        assert!(
            unique.len() < queries.len(),
            "expected repeated queries for shareability"
        );
    }

    #[test]
    fn custom_stream_name_used() {
        let mut g = QueryTemplateGenerator::new(2, "spectra");
        let q = g.next_query_of(TemplateKind::Selection);
        assert!(q.contains("stream(\"spectra\")/spectra/photon"));
        compile_query(&q).unwrap();
    }
}
