//! Synthetic ROSAT-All-Sky-Survey photon streams.
//!
//! The paper evaluates on real RASS photon data obtained from the Max
//! Planck Institute for Extraterrestrial Physics. That data is not
//! available; per the substitution table in DESIGN.md we generate a
//! synthetic stream with the same element structure and the statistical
//! features the algorithms depend on: source regions (so region predicates
//! have non-trivial, tunable selectivity), energy spectra (for energy
//! cuts), and a strictly monotone `det_time` (value-based windows require a
//! sorted reference element).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use dss_xml::{Decimal, Node};

use crate::photon::Photon;

/// A rectangular sky region in (ra, dec) degrees.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SkyRegion {
    pub ra_min: f64,
    pub ra_max: f64,
    pub dec_min: f64,
    pub dec_max: f64,
}

impl SkyRegion {
    /// `true` if the region contains the point.
    pub fn contains(&self, ra: f64, dec: f64) -> bool {
        ra >= self.ra_min && ra <= self.ra_max && dec >= self.dec_min && dec <= self.dec_max
    }
}

/// The Vela supernova remnant region (Query 1).
pub const VELA: SkyRegion = SkyRegion {
    ra_min: 120.0,
    ra_max: 138.0,
    dec_min: -49.0,
    dec_max: -40.0,
};

/// The RX J0852.0-4622 supernova remnant region (Query 2), contained in
/// Vela.
pub const RXJ0852: SkyRegion = SkyRegion {
    ra_min: 130.5,
    ra_max: 135.5,
    dec_min: -48.0,
    dec_max: -45.0,
};

/// The simulated survey field: the patch of sky the telescope scans.
pub const SURVEY_FIELD: SkyRegion = SkyRegion {
    ra_min: 90.0,
    ra_max: 180.0,
    dec_min: -60.0,
    dec_max: -20.0,
};

/// An X-ray source: photons cluster in its region with a characteristic
/// energy band.
#[derive(Debug, Clone, Copy)]
pub struct XraySource {
    pub region: SkyRegion,
    /// Fraction of all photons attributed to this source.
    pub weight: f64,
    /// Energy band in keV.
    pub en_min: f64,
    pub en_max: f64,
}

/// Photon stream generator configuration.
#[derive(Debug, Clone)]
pub struct GeneratorConfig {
    /// RNG seed (generation is fully deterministic given the config).
    pub seed: u64,
    /// Survey field for background photons.
    pub field: SkyRegion,
    /// Clustered sources.
    pub sources: Vec<XraySource>,
    /// Background energy band in keV.
    pub background_en: (f64, f64),
    /// Mean `det_time` increment between photons (seconds); the stream's
    /// item frequency is `1 / mean_time_increment`.
    pub mean_time_increment: f64,
}

impl Default for GeneratorConfig {
    /// Vela-centric defaults: 30 % of photons from the Vela remnant, 10 %
    /// from the (contained) RX J0852.0-4622 remnant with a harder
    /// spectrum, the rest survey background.
    fn default() -> GeneratorConfig {
        GeneratorConfig {
            seed: 0x5eed_0001,
            field: SURVEY_FIELD,
            sources: vec![
                XraySource {
                    region: VELA,
                    weight: 0.3,
                    en_min: 0.4,
                    en_max: 2.4,
                },
                XraySource {
                    region: RXJ0852,
                    weight: 0.1,
                    en_min: 1.0,
                    en_max: 3.0,
                },
            ],
            background_en: (0.1, 2.0),
            mean_time_increment: 0.01, // 100 photons/s
        }
    }
}

impl GeneratorConfig {
    /// The stream's item frequency in photons per second.
    pub fn frequency(&self) -> f64 {
        1.0 / self.mean_time_increment
    }
}

/// Deterministic photon stream generator.
#[derive(Debug)]
pub struct PhotonGenerator {
    cfg: GeneratorConfig,
    rng: StdRng,
    time: f64,
    phc: u64,
}

impl PhotonGenerator {
    /// Creates a generator.
    pub fn new(cfg: GeneratorConfig) -> PhotonGenerator {
        let rng = StdRng::seed_from_u64(cfg.seed);
        PhotonGenerator {
            cfg,
            rng,
            time: 0.0,
            phc: 0,
        }
    }

    /// Generates the next photon. `det_time` is strictly monotone.
    pub fn next_photon(&mut self) -> Photon {
        // Advance time by a positive, bounded increment.
        self.time += self.rng.gen_range(0.2..1.8) * self.cfg.mean_time_increment;
        self.phc += 1;
        // Pick origin: a source (by weight) or background.
        let roll: f64 = self.rng.gen_range(0.0..1.0);
        let mut acc = 0.0;
        let mut chosen: Option<&XraySource> = None;
        for s in &self.cfg.sources {
            acc += s.weight;
            if roll < acc {
                chosen = Some(s);
                break;
            }
        }
        let (region, en_lo, en_hi) = match chosen {
            Some(s) => (s.region, s.en_min, s.en_max),
            None => (
                self.cfg.field,
                self.cfg.background_en.0,
                self.cfg.background_en.1,
            ),
        };
        let ra = self.rng.gen_range(region.ra_min..=region.ra_max);
        let dec = self.rng.gen_range(region.dec_min..=region.dec_max);
        let en = self.rng.gen_range(en_lo..=en_hi);
        Photon {
            phc: self.phc,
            ra: Decimal::from_f64_rounded(ra, 3),
            dec: Decimal::from_f64_rounded(dec, 3),
            dx: self.rng.gen_range(0..512),
            dy: self.rng.gen_range(0..512),
            en: Decimal::from_f64_rounded(en, 3),
            det_time: Decimal::from_f64_rounded(self.time, 4),
        }
    }

    /// Generates `n` photons as XML stream items.
    pub fn generate_items(&mut self, n: usize) -> Vec<Node> {
        (0..n).map(|_| self.next_photon().to_node()).collect()
    }
}

/// Convenience: `n` photon items with the default configuration and the
/// given seed.
pub fn default_photons(seed: u64, n: usize) -> Vec<Node> {
    let cfg = GeneratorConfig {
        seed,
        ..GeneratorConfig::default()
    };
    PhotonGenerator::new(cfg).generate_items(n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dss_xml::schema::photon_schema;
    use dss_xml::Path;

    #[test]
    fn deterministic_given_seed() {
        let a = default_photons(7, 50);
        let b = default_photons(7, 50);
        let c = default_photons(8, 50);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn photons_conform_to_schema() {
        let schema = photon_schema();
        for item in default_photons(1, 100) {
            schema.validate_complete(&item).unwrap();
        }
    }

    #[test]
    fn det_time_is_strictly_monotone() {
        let items = default_photons(2, 500);
        let path: Path = "det_time".parse().unwrap();
        let times: Vec<_> = items
            .iter()
            .map(|i| path.decimal_value(i).unwrap())
            .collect();
        for w in times.windows(2) {
            assert!(w[0] < w[1], "det_time must be strictly increasing");
        }
    }

    #[test]
    fn source_regions_are_enriched() {
        let items = default_photons(3, 2000);
        let ra: Path = "coord/cel/ra".parse().unwrap();
        let dec: Path = "coord/cel/dec".parse().unwrap();
        let in_vela = items
            .iter()
            .filter(|i| {
                VELA.contains(
                    ra.decimal_value(i).unwrap().to_f64(),
                    dec.decimal_value(i).unwrap().to_f64(),
                )
            })
            .count();
        // Vela covers ~4.5 % of the survey field but receives ≥ 30 % of
        // photons (sources) plus its share of background.
        let frac = in_vela as f64 / items.len() as f64;
        assert!(frac > 0.3, "Vela fraction {frac}");
        assert!(frac < 0.7, "Vela fraction {frac}");
    }

    #[test]
    fn rxj_photons_exist_with_high_energy() {
        let items = default_photons(4, 2000);
        let ra: Path = "coord/cel/ra".parse().unwrap();
        let dec: Path = "coord/cel/dec".parse().unwrap();
        let en: Path = "en".parse().unwrap();
        let matching = items
            .iter()
            .filter(|i| {
                RXJ0852.contains(
                    ra.decimal_value(i).unwrap().to_f64(),
                    dec.decimal_value(i).unwrap().to_f64(),
                ) && en.decimal_value(i).unwrap().to_f64() >= 1.3
            })
            .count();
        assert!(
            matching > 50,
            "got only {matching} RX J0852 photons above 1.3 keV"
        );
    }

    #[test]
    fn frequency_matches_config() {
        let cfg = GeneratorConfig::default();
        assert!((cfg.frequency() - 100.0).abs() < 1e-9);
        let mut g = PhotonGenerator::new(cfg);
        let items = g.generate_items(1000);
        let path: Path = "det_time".parse().unwrap();
        let last = path.decimal_value(items.last().unwrap()).unwrap().to_f64();
        // 1000 photons at ~100/s ⇒ ~10 s of data.
        assert!((8.0..12.0).contains(&last), "last det_time {last}");
    }
}
