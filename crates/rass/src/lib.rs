//! Synthetic ROSAT-All-Sky-Survey substrate: photon streams, WXQuery
//! workload templates, and the paper's two benchmark scenarios.
//!
//! The paper evaluates on real astrophysical data (RASS photons from MPE)
//! on a blade cluster. Neither is available here; this crate provides the
//! documented substitutes (see DESIGN.md): a deterministic photon-stream
//! generator with configurable X-ray source regions, the Section-4 query
//! template generator with predefined value sets, and builders for the
//! 8-super-peer example scenario and the 4×4-grid scenario.

pub mod generator;
pub mod photon;
pub mod scenario;
pub mod templates;

pub use generator::{
    default_photons, GeneratorConfig, PhotonGenerator, SkyRegion, XraySource, RXJ0852,
    SURVEY_FIELD, VELA,
};
pub use photon::Photon;
pub use scenario::{example_network, QueryDef, Scenario, ScenarioOutcome, StreamDef};
pub use templates::{QueryTemplateGenerator, TemplateKind, ValueSets};
