//! Photon records and their XML form (the paper's Section-1 DTD).

use dss_xml::{Decimal, Node, XmlError};

/// One detected photon.
///
/// ```text
/// photon ── phc, coord(cel(ra, dec), det(dx, dy)), en, det_time
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Photon {
    /// Photon counter.
    pub phc: u64,
    /// Celestial right ascension (degrees).
    pub ra: Decimal,
    /// Celestial declination (degrees).
    pub dec: Decimal,
    /// Detector pixel x.
    pub dx: u32,
    /// Detector pixel y.
    pub dy: u32,
    /// Energy (keV).
    pub en: Decimal,
    /// Detection time (seconds since observation start; monotone).
    pub det_time: Decimal,
}

impl Photon {
    /// Serializes the photon to its stream-item XML form.
    pub fn to_node(&self) -> Node {
        Node::elem(
            "photon",
            vec![
                Node::leaf("phc", self.phc.to_string()),
                Node::elem(
                    "coord",
                    vec![
                        Node::elem(
                            "cel",
                            vec![
                                Node::decimal_leaf("ra", self.ra),
                                Node::decimal_leaf("dec", self.dec),
                            ],
                        ),
                        Node::elem(
                            "det",
                            vec![
                                Node::leaf("dx", self.dx.to_string()),
                                Node::leaf("dy", self.dy.to_string()),
                            ],
                        ),
                    ],
                ),
                Node::decimal_leaf("en", self.en),
                Node::decimal_leaf("det_time", self.det_time),
            ],
        )
    }

    /// Parses a photon from its XML form.
    pub fn from_node(node: &Node) -> Result<Photon, XmlError> {
        let leaf = |path: &str| -> Result<Decimal, XmlError> {
            path.parse::<dss_xml::Path>()?.decimal_value(node)
        };
        let int = |path: &str| -> Result<i128, XmlError> {
            let v = leaf(path)?;
            if v.is_integer() {
                Ok(v.units())
            } else {
                Err(XmlError::ValueParse {
                    value: v.to_string(),
                    wanted: "integer",
                })
            }
        };
        Ok(Photon {
            phc: int("phc")? as u64,
            ra: leaf("coord/cel/ra")?,
            dec: leaf("coord/cel/dec")?,
            dx: int("coord/det/dx")? as u32,
            dy: int("coord/det/dy")? as u32,
            en: leaf("en")?,
            det_time: leaf("det_time")?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dss_xml::schema::photon_schema;

    fn sample() -> Photon {
        Photon {
            phc: 42,
            ra: "130.7".parse().unwrap(),
            dec: "-46.2".parse().unwrap(),
            dx: 100,
            dy: 200,
            en: "1.4".parse().unwrap(),
            det_time: "1017.5".parse().unwrap(),
        }
    }

    #[test]
    fn round_trip() {
        let p = sample();
        assert_eq!(Photon::from_node(&p.to_node()).unwrap(), p);
    }

    #[test]
    fn conforms_to_paper_schema() {
        photon_schema()
            .validate_complete(&sample().to_node())
            .unwrap();
    }

    #[test]
    fn from_node_rejects_malformed() {
        assert!(Photon::from_node(&Node::empty("photon")).is_err());
        let mut n = sample().to_node();
        n.children_mut().retain(|c| c.name() != "en");
        assert!(Photon::from_node(&n).is_err());
    }
}
