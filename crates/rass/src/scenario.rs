//! The paper's two benchmark scenarios (Section 4).
//!
//! * Scenario 1: the example network of Figures 1/2 — 8 super-peers, 1 data
//!   stream, 25 template queries.
//! * Scenario 2: a 4×4 super-peer grid — 16 super-peers, 2 data streams,
//!   100 template queries.

use dss_core::{Registration, Strategy, StreamGlobe, SystemError};
use dss_network::{example_topology, grid_topology, SimConfig, SimOutcome, Topology};
use dss_xml::Node;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::generator::{GeneratorConfig, PhotonGenerator};
use crate::templates::QueryTemplateGenerator;

/// A stream to register before the queries.
#[derive(Debug, Clone)]
pub struct StreamDef {
    pub name: String,
    pub peer: String,
    pub items: Vec<Node>,
    pub frequency: f64,
}

/// A query to register.
#[derive(Debug, Clone)]
pub struct QueryDef {
    pub id: String,
    pub text: String,
    pub peer: String,
}

/// A reproducible benchmark scenario.
#[derive(Debug, Clone)]
pub struct Scenario {
    pub name: String,
    pub topology: Topology,
    pub streams: Vec<StreamDef>,
    pub queries: Vec<QueryDef>,
}

/// Result of running a scenario under one strategy.
#[derive(Debug)]
pub struct ScenarioOutcome {
    pub system: StreamGlobe,
    pub registrations: Vec<Registration>,
    /// Ids rejected by admission control.
    pub rejected: Vec<String>,
    /// Ids that errored for other reasons (should stay empty).
    pub errored: Vec<(String, String)>,
}

impl Scenario {
    /// Scenario 1: "the network topology of the example scenario of
    /// Section 1 … 8 super-peers, 1 data stream, and 25 queries." Queries
    /// are registered round-robin at the subscriber thin-peers P1–P4.
    pub fn scenario1(seed: u64) -> Scenario {
        let mut topology = example_topology();
        calibrate_capacities(&mut topology);
        // Stretch det_time so the template windows (Δ up to 120) produce a
        // healthy number of aggregate values over the 2 000-item sample.
        let cfg = GeneratorConfig {
            seed,
            mean_time_increment: 0.2,
            ..GeneratorConfig::default()
        };
        let streams = vec![StreamDef {
            name: "photons".into(),
            peer: "P0".into(),
            items: PhotonGenerator::new(cfg.clone()).generate_items(2_000),
            // The RASS instrument delivers on the order of 100 photons/s;
            // det_time advances in abstract units independent of wall time.
            frequency: STREAM_FREQUENCY,
        }];
        let mut tgen = QueryTemplateGenerator::new(seed ^ 0x51, "photons");
        let peers = ["P1", "P2", "P3", "P4"];
        let queries = (0..25)
            .map(|i| QueryDef {
                id: format!("q{i}"),
                text: tgen.next_query(),
                peer: peers[i % peers.len()].to_string(),
            })
            .collect();
        Scenario {
            name: "scenario1".into(),
            topology,
            streams,
            queries,
        }
    }

    /// Scenario 2: "a 4 × 4 grid topology with 16 super-peers, 2 data
    /// streams, and 100 queries." The streams enter at opposite corners
    /// (SP0 and SP15); queries are registered at uniformly chosen
    /// super-peers and reference one of the two streams uniformly.
    pub fn scenario2(seed: u64) -> Scenario {
        let mut topology = grid_topology(4, 4);
        calibrate_capacities(&mut topology);
        let mk_stream = |name: &str, peer: &str, s: u64| {
            let cfg = GeneratorConfig {
                seed: s,
                mean_time_increment: 0.2,
                ..GeneratorConfig::default()
            };
            StreamDef {
                name: name.into(),
                peer: peer.into(),
                items: PhotonGenerator::new(cfg.clone()).generate_items(1_500),
                frequency: STREAM_FREQUENCY,
            }
        };
        let streams = vec![
            mk_stream("photons_a", "SP0", seed ^ 0xa),
            mk_stream("photons_b", "SP15", seed ^ 0xb),
        ];
        let mut rng = StdRng::seed_from_u64(seed ^ 0x52);
        let mut tgen_a = QueryTemplateGenerator::new(seed ^ 0x5a, "photons_a");
        let mut tgen_b = QueryTemplateGenerator::new(seed ^ 0x5b, "photons_b");
        let queries = (0..100)
            .map(|i| {
                let text = if rng.gen_bool(0.5) {
                    tgen_a.next_query()
                } else {
                    tgen_b.next_query()
                };
                QueryDef {
                    id: format!("q{i}"),
                    text,
                    peer: format!("SP{}", rng.gen_range(0..16)),
                }
            })
            .collect();
        Scenario {
            name: "scenario2".into(),
            topology,
            streams,
            queries,
        }
    }

    /// Builds a fresh system with the scenario's streams registered (no
    /// queries yet).
    pub fn build_system(&self) -> StreamGlobe {
        let mut sys = StreamGlobe::new(self.topology.clone());
        for s in &self.streams {
            sys.register_stream(s.name.clone(), &s.peer, s.items.clone(), s.frequency)
                .expect("scenario streams register cleanly");
        }
        sys
    }

    /// Registers all queries under `strategy`. With `admission`, overload
    /// rejections are collected instead of installed.
    pub fn run(&self, strategy: Strategy, admission: bool) -> ScenarioOutcome {
        let mut system = self.build_system();
        let mut registrations = Vec::new();
        let mut rejected = Vec::new();
        let mut errored = Vec::new();
        for q in &self.queries {
            match system.register_query_opts(q.id.clone(), &q.text, &q.peer, strategy, admission) {
                Ok(reg) => registrations.push(reg),
                Err(SystemError::Subscribe(dss_core::SubscribeError::Overload)) => {
                    rejected.push(q.id.clone());
                }
                Err(other) => errored.push((q.id.clone(), other.to_string())),
            }
        }
        ScenarioOutcome {
            system,
            registrations,
            rejected,
            errored,
        }
    }
}

/// Stream item frequency used by both scenarios (photons per second).
///
/// Together with [`SCENARIO_SP_CAPACITY`] this calibrates the workload so
/// that the paper's admission caps (10 % CPU, 1 Mbit/s) bind comparably:
/// the raw stream is a noticeable fraction of a capped connection and a
/// capped super-peer sustains a few dozen per-query operator chains.
pub const STREAM_FREQUENCY: f64 = 60.0;

/// Super-peer capacity used by the scenarios (work units per second).
pub const SCENARIO_SP_CAPACITY: f64 = 40_000.0;

fn calibrate_capacities(topology: &mut Topology) {
    for sp in topology.super_peers() {
        topology.peer_mut(sp).capacity = SCENARIO_SP_CAPACITY;
    }
}

impl ScenarioOutcome {
    /// Runs the simulator over the installed deployment.
    pub fn simulate(&self, cfg: SimConfig) -> SimOutcome {
        self.system.run_simulation(cfg)
    }

    /// Timed mode: runs the installed deployment under the discrete-event
    /// live runtime, replaying `faults` (peer crashes trigger automatic
    /// re-subscription of affected queries).
    pub fn run_live(
        &mut self,
        cfg: dss_network::runtime::LiveConfig,
        faults: &dss_network::runtime::FaultScript,
    ) -> Result<dss_core::LiveOutcome, SystemError> {
        self.system.run_live(cfg, faults)
    }
}

/// The example network of Figures 1/2 with the `photons` stream registered
/// at P0 — the starting point of the README/quickstart.
pub fn example_network() -> StreamGlobe {
    let mut sys = StreamGlobe::new(example_topology());
    // ~500 time units over 1 000 photons.
    let cfg = GeneratorConfig {
        seed: 0xbeef,
        mean_time_increment: 0.5,
        ..GeneratorConfig::default()
    };
    sys.register_stream(
        "photons",
        "P0",
        PhotonGenerator::new(cfg.clone()).generate_items(1_000),
        cfg.frequency(),
    )
    .expect("photons registers");
    sys
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenario1_matches_paper_parameters() {
        let s = Scenario::scenario1(42);
        assert_eq!(s.topology.super_peers().len(), 8);
        assert_eq!(s.streams.len(), 1);
        assert_eq!(s.queries.len(), 25);
    }

    #[test]
    fn scenario2_matches_paper_parameters() {
        let s = Scenario::scenario2(42);
        assert_eq!(s.topology.super_peers().len(), 16);
        assert_eq!(s.streams.len(), 2);
        assert_eq!(s.queries.len(), 100);
    }

    #[test]
    fn scenario1_runs_under_all_strategies() {
        let s = Scenario::scenario1(42);
        for strategy in Strategy::ALL {
            let out = s.run(strategy, false);
            assert_eq!(out.registrations.len(), 25, "{strategy}: {:?}", out.errored);
            assert!(out.rejected.is_empty());
            assert!(out.errored.is_empty());
        }
    }

    #[test]
    fn scenario1_stream_sharing_reuses_streams() {
        let s = Scenario::scenario1(42);
        let out = s.run(Strategy::StreamSharing, false);
        let reused = out
            .registrations
            .iter()
            .filter(|r| r.reused_derived_stream)
            .count();
        assert!(
            reused > 0,
            "template queries should produce shareable streams"
        );
    }

    #[test]
    fn scenario1_traffic_ordering() {
        let s = Scenario::scenario1(42);
        let mut totals = Vec::new();
        for strategy in Strategy::ALL {
            let out = s.run(strategy, false);
            let sim = out.simulate(SimConfig::default());
            totals.push(sim.metrics.total_edge_bytes());
        }
        let (ds, qs, ss) = (totals[0], totals[1], totals[2]);
        assert!(ds > qs, "data shipping {ds} ≤ query shipping {qs}");
        assert!(qs > ss, "query shipping {qs} ≤ stream sharing {ss}");
    }

    #[test]
    fn scenarios_are_reproducible() {
        let a = Scenario::scenario1(9);
        let b = Scenario::scenario1(9);
        assert_eq!(
            a.queries.iter().map(|q| &q.text).collect::<Vec<_>>(),
            b.queries.iter().map(|q| &q.text).collect::<Vec<_>>()
        );
        assert_eq!(a.streams[0].items, b.streams[0].items);
    }

    #[test]
    fn scenario1_timed_mode_delivers() {
        let s = Scenario::scenario1(42);
        let mut out = s.run(Strategy::StreamSharing, false);
        let cfg = dss_network::runtime::LiveConfig {
            duration_s: 2.0,
            ..Default::default()
        };
        let live = out
            .run_live(cfg, &dss_network::runtime::FaultScript::new())
            .unwrap();
        assert!(
            live.metrics.queries.values().any(|q| q.delivered > 0),
            "some selection query must deliver within 2 simulated seconds"
        );
        assert!(live.failovers.is_empty());
        assert_eq!(live.metrics.items_lost, 0);
    }

    #[test]
    fn example_network_is_ready() {
        let sys = example_network();
        assert_eq!(sys.deployment().len(), 1);
        assert_eq!(sys.query_count(), 0);
    }
}
