//! WXQuery — the paper's windowed-XQuery subscription language
//! (Definition 2.1).
//!
//! WXQuery is the fragment of XQuery the paper uses for continuous queries
//! over XML data streams, extended with the `stream(…)` input function and
//! data windows `|count Δ step µ|` / `|π diff Δ step µ|`. This crate
//! provides:
//!
//! * [`parse_query`] — a recursive-descent parser producing the [`ast`],
//! * [`compile_query`] — lowering of *flat* subscriptions (the fragment the
//!   paper's sharing approach supports; nesting is its future work) into
//!   [`dss_properties::Properties`] plus a restructuring template, and
//! * [`queries`] — the paper's Queries 1–4 verbatim, shared by tests,
//!   examples, and benchmarks.

pub mod ast;
pub mod compile;
pub mod display;
pub mod error;
pub mod parse;
pub mod queries;
#[cfg(feature = "testing")]
pub mod testing;

pub use compile::{compile_expr, compile_query, CompiledQuery};
pub use error::QueryError;
pub use parse::parse_query;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{self, Clause, Content, Expr, ForSource, WindowAst};
    use dss_engine::Template;
    use dss_predicate::{Atom, CompOp, PredicateGraph};
    use dss_properties::{match_input_properties, AggOp};
    use dss_xml::{Decimal, Path};

    fn p(s: &str) -> Path {
        s.parse().unwrap()
    }

    fn d(s: &str) -> Decimal {
        s.parse().unwrap()
    }

    // ----- parsing ---------------------------------------------------

    #[test]
    fn parses_all_paper_queries() {
        for (name, text) in queries::ALL {
            parse_query(text).unwrap_or_else(|e| panic!("{name} failed to parse: {e}"));
        }
    }

    #[test]
    fn q1_ast_shape() {
        let Expr::Element(root) = parse_query(queries::Q1).unwrap() else {
            panic!("expected an element constructor");
        };
        assert_eq!(root.tag, "photons");
        assert_eq!(root.content.len(), 1);
        let Content::Enclosed(Expr::Flwr(flwr)) = &root.content[0] else {
            panic!("expected an enclosed FLWR");
        };
        assert_eq!(flwr.clauses.len(), 1);
        let Clause::For {
            var,
            source,
            path,
            conditions,
            window,
        } = &flwr.clauses[0]
        else {
            panic!("expected a for clause");
        };
        assert_eq!(var, "p");
        assert_eq!(source, &ForSource::Stream("photons".into()));
        assert_eq!(path, &p("photons/photon"));
        assert!(conditions.is_empty());
        assert!(window.is_none());
        assert_eq!(flwr.where_.len(), 4);
    }

    #[test]
    fn q3_ast_has_path_condition_and_window() {
        let expr = parse_query(queries::Q3).unwrap();
        let flwr = expr.flwrs()[0];
        assert_eq!(flwr.clauses.len(), 2);
        let Clause::For {
            conditions, window, ..
        } = &flwr.clauses[0]
        else {
            panic!("expected for clause first");
        };
        assert_eq!(conditions.len(), 4);
        assert_eq!(
            window,
            &Some(WindowAst::Diff {
                reference: p("det_time"),
                size: d("20"),
                step: Some(d("10")),
            })
        );
        let Clause::Let { var, op, source } = &flwr.clauses[1] else {
            panic!("expected let clause second");
        };
        assert_eq!(var, "a");
        assert_eq!(*op, AggOp::Avg);
        assert_eq!(source.var, "w");
        assert_eq!(source.path, p("en"));
    }

    #[test]
    fn parses_count_window_with_default_step() {
        let q = r#"<r>{ for $w in stream("s")/root/item |count 20|
                     let $a := sum($w/v) return <s>{ $a }</s> }</r>"#;
        let expr = parse_query(q).unwrap();
        let Clause::For { window, .. } = &expr.flwrs()[0].clauses[0] else {
            panic!()
        };
        assert_eq!(
            window,
            &Some(WindowAst::Count {
                size: d("20"),
                step: None
            })
        );
    }

    #[test]
    fn parses_var_to_var_predicates() {
        let q = r#"<r>{ for $p in stream("s")/root/item
                     where $p/a <= $p/b + 3.5 return <x>{ $p/a }</x> }</r>"#;
        let expr = parse_query(q).unwrap();
        let flwr = expr.flwrs()[0];
        assert_eq!(flwr.where_.len(), 1);
        match &flwr.where_[0].rhs {
            ast::PredTerm::VarPlus(vp, c) => {
                assert_eq!(vp.path, p("b"));
                assert_eq!(*c, d("3.5"));
            }
            other => panic!("unexpected rhs {other:?}"),
        }
    }

    #[test]
    fn parses_negative_offsets_and_flipped_constants() {
        let q = r#"<r>{ for $p in stream("s")/root/item
                     where $p/a >= $p/b - 2 and 5 <= $p/c
                     return <x>{ $p/a }</x> }</r>"#;
        let expr = parse_query(q).unwrap();
        let w = &expr.flwrs()[0].where_;
        match &w[0].rhs {
            ast::PredTerm::VarPlus(_, c) => assert_eq!(*c, d("-2")),
            other => panic!("unexpected {other:?}"),
        }
        // 5 <= $p/c normalized to $p/c >= 5.
        assert_eq!(w[1].op, CompOp::Ge);
        assert_eq!(w[1].lhs.path, p("c"));
    }

    #[test]
    fn parses_if_and_sequence_expressions() {
        let q = r#"<r>{ for $p in stream("s")/root/item
                     return if $p/a >= 1 then <hot>{ $p/a }</hot> else <cold/> }</r>"#;
        let expr = parse_query(q).unwrap();
        let flwr = expr.flwrs()[0];
        assert!(matches!(*flwr.ret, Expr::If { .. }));

        let q = r#"<r>{ for $p in stream("s")/root/item
                     return ( <a>{ $p/x }</a>, <b>{ $p/y }</b> ) }</r>"#;
        let expr = parse_query(q).unwrap();
        assert!(matches!(&*expr.flwrs()[0].ret, Expr::Sequence(items) if items.len() == 2));
    }

    #[test]
    fn parses_comments_and_empty_elements() {
        let q = r#"(: vela :) <r>{ for $p in stream("s")/root/item
                     return <m/> }</r>"#;
        parse_query(q).unwrap();
    }

    #[test]
    fn parse_errors_are_reported() {
        for bad in [
            "",
            "<r>",
            "<r></x>",
            r#"<r>{ for $p stream("s")/a/b return <x/> }</r>"#,
            r#"<r>{ for $p in stream("s")/a/b where return <x/> }</r>"#,
            r#"<r>{ for $p in stream("s")/a/b return }</r>"#,
            r#"<r>{ for $p in stream("s")/a/b where 1 >= 2 return <x/> }</r>"#,
            r#"<r>{ for $p in stream("s")/a/b |mystery 5| return <x/> }</r>"#,
        ] {
            assert!(parse_query(bad).is_err(), "{bad:?} should fail");
        }
    }

    // ----- compilation -----------------------------------------------

    #[test]
    fn compiles_all_paper_queries() {
        for (name, text) in queries::ALL {
            compile_query(text).unwrap_or_else(|e| panic!("{name} failed to compile: {e}"));
        }
    }

    #[test]
    fn q1_compiled_properties() {
        let q1 = compile_query(queries::Q1).unwrap();
        assert_eq!(q1.input_stream, "photons");
        assert_eq!(q1.stream_root, "photons");
        assert_eq!(q1.item_name, "photon");
        assert_eq!(q1.result_root, "photons");
        assert!(q1.aggregation.is_none());
        let input = &q1.properties.inputs()[0];
        let sel = input.selection().expect("selection present");
        let expected = PredicateGraph::from_atoms(&[
            Atom::var_const(p("coord/cel/ra"), CompOp::Ge, d("120.0")),
            Atom::var_const(p("coord/cel/ra"), CompOp::Le, d("138.0")),
            Atom::var_const(p("coord/cel/dec"), CompOp::Ge, d("-49.0")),
            Atom::var_const(p("coord/cel/dec"), CompOp::Le, d("-40.0")),
        ]);
        assert_eq!(sel, &expected.minimize());
        let proj = input.projection().expect("projection present");
        assert!(proj.output.contains(&p("phc")));
        assert!(proj.output.contains(&p("en")));
        assert!(proj.output.contains(&p("coord/cel/ra")));
        assert!(proj.referenced.contains(&p("coord/cel/dec")));
        assert_eq!(proj.output.len(), 5);
    }

    #[test]
    fn q2_matches_q1_stream_end_to_end() {
        // The motivating example, now from the raw query texts.
        let q1 = compile_query(queries::Q1).unwrap();
        let q2 = compile_query(queries::Q2).unwrap();
        assert!(match_input_properties(
            &q1.properties.inputs()[0],
            &q2.properties.inputs()[0]
        ));
        assert!(!match_input_properties(
            &q2.properties.inputs()[0],
            &q1.properties.inputs()[0]
        ));
    }

    #[test]
    fn q4_matches_q3_stream_end_to_end() {
        let q3 = compile_query(queries::Q3).unwrap();
        let q4 = compile_query(queries::Q4).unwrap();
        assert!(match_input_properties(
            &q3.properties.inputs()[0],
            &q4.properties.inputs()[0]
        ));
        assert!(!match_input_properties(
            &q4.properties.inputs()[0],
            &q3.properties.inputs()[0]
        ));
    }

    #[test]
    fn q3_aggregation_spec() {
        let q3 = compile_query(queries::Q3).unwrap();
        let agg = q3.aggregation.expect("Q3 aggregates");
        assert_eq!(agg.op, AggOp::Avg);
        assert_eq!(agg.element, p("en"));
        assert_eq!(agg.window.size(), d("20"));
        assert_eq!(agg.window.step(), d("10"));
        assert!(agg.result_filter.is_trivial());
        assert!(!agg.pre_selection.is_trivial());
    }

    #[test]
    fn q4_result_filter() {
        let q4 = compile_query(queries::Q4).unwrap();
        let agg = q4.aggregation.expect("Q4 aggregates");
        assert_eq!(agg.result_filter.conditions, vec![(CompOp::Ge, d("1.3"))]);
        assert_eq!(agg.window.size(), d("60"));
        assert_eq!(agg.window.step(), d("40"));
    }

    #[test]
    fn q1_template_shape() {
        let q1 = compile_query(queries::Q1).unwrap();
        let Template::Element { tag, children } = &q1.template else {
            panic!("expected an element template");
        };
        assert_eq!(tag.as_str(), "vela");
        assert_eq!(children.len(), 5);
        assert_eq!(children[0], Template::Subtree(p("coord/cel/ra")));
        assert_eq!(children[4], Template::Subtree(p("det_time")));
    }

    #[test]
    fn q3_template_uses_agg_value() {
        let q3 = compile_query(queries::Q3).unwrap();
        assert_eq!(
            q3.template,
            Template::Element {
                tag: "avg_en".into(),
                children: vec![Template::AggValue]
            }
        );
    }

    #[test]
    fn unsatisfiable_predicate_rejected_at_compile() {
        let q = r#"<r>{ for $p in stream("s")/root/item
                     where $p/en >= 2 and $p/en <= 1 return <x>{ $p/en }</x> }</r>"#;
        assert!(matches!(compile_query(q), Err(QueryError::Properties(_))));
    }

    #[test]
    fn unsupported_features_rejected() {
        // Nested FLWR.
        let nested = r#"<r>{ for $p in stream("s")/root/item
            return <x>{ for $q in stream("t")/r/i return <y/> }</x> }</r>"#;
        assert!(matches!(
            compile_query(nested),
            Err(QueryError::Unsupported(_))
        ));
        // Multiple for clauses.
        let multi = r#"<r>{ for $p in stream("s")/root/item
                           for $q in stream("t")/root/item
                           return <x/> }</r>"#;
        assert!(matches!(
            compile_query(multi),
            Err(QueryError::Unsupported(_))
        ));
        // Paths below the window variable in a window-contents query.
        let window_path = r#"<r>{ for $w in stream("s")/root/item |count 5|
                                return <x>{ $w/v }</x> }</r>"#;
        assert!(matches!(
            compile_query(window_path),
            Err(QueryError::Unsupported(_))
        ));
        // doc() source.
        let doc = r#"<r>{ for $p in doc("file")/root/item return <x/> }</r>"#;
        assert!(matches!(
            compile_query(doc),
            Err(QueryError::Unsupported(_))
        ));
    }

    #[test]
    fn analysis_errors_rejected() {
        // Unbound variable in predicate.
        let unbound = r#"<r>{ for $p in stream("s")/root/item
                            where $q/en >= 1 return <x/> }</r>"#;
        assert!(matches!(
            compile_query(unbound),
            Err(QueryError::Analysis(_))
        ));
        // Aggregation without a window.
        let no_window = r#"<r>{ for $p in stream("s")/root/item
                               let $a := avg($p/en) return <x>{ $a }</x> }</r>"#;
        assert!(matches!(
            compile_query(no_window),
            Err(QueryError::Analysis(_))
        ));
        // Aggregate filter without a let clause.
        let no_let = r#"<r>{ for $p in stream("s")/root/item
                            where $a >= 1 return <x>{ $p/en }</x> }</r>"#;
        assert!(matches!(
            compile_query(no_let),
            Err(QueryError::Analysis(_))
        ));
    }

    #[test]
    fn window_contents_queries_compile() {
        let q = r#"<r>{ for $w in stream("s")/root/item
                       [v >= 1.0]
                       |t diff 20 step 10|
                       return <wnd>{ $w }</wnd> }</r>"#;
        let compiled = compile_query(q).unwrap();
        let spec = compiled.window_output.as_ref().expect("window output");
        assert_eq!(spec.window.size(), d("20"));
        assert_eq!(spec.window.step(), d("10"));
        assert!(!spec.pre_selection.is_trivial());
        assert!(compiled.aggregation.is_none());
        assert_eq!(
            compiled.template,
            Template::Element {
                tag: "wnd".into(),
                children: vec![Template::WindowContents]
            }
        );
        match &compiled.properties.inputs()[0].operators()[1] {
            dss_properties::Operator::WindowOutput(w) => assert_eq!(w, spec),
            other => panic!("expected WindowOutput operator, got {other:?}"),
        }
    }

    #[test]
    fn window_contents_queries_execute_end_to_end() {
        use dss_engine::StreamOperatorExt;
        let q = r#"<r>{ for $w in stream("s")/root/item |t diff 10|
                       return <wnd>{ $w }</wnd> }</r>"#;
        let compiled = compile_query(q).unwrap();
        let mut pipe = dss_engine::build_pipeline(compiled.operator_chain());
        let mut post = compiled.restructure_op();
        let mut results = Vec::new();
        for t in [1, 5, 12, 25] {
            let item = dss_xml::Node::elem("item", vec![dss_xml::Node::leaf("t", t.to_string())]);
            for w in pipe.process(&item) {
                results.extend(post.process_collect(&w));
            }
        }
        for w in pipe.flush() {
            results.extend(post.process_collect(&w));
        }
        assert_eq!(results.len(), 3); // windows [0,10), [10,20), [20,30)
        assert_eq!(results[0].name(), "wnd");
        assert_eq!(results[0].children().len(), 2); // items at t=1, t=5
        assert_eq!(results[2].children().len(), 1);
    }

    #[test]
    fn compiled_query_restructures_items() {
        use dss_engine::StreamOperatorExt;
        let q1 = compile_query(queries::Q1).unwrap();
        let mut op = q1.restructure_op();
        let photon = dss_xml::Node::parse(
            "<photon><phc>5</phc><coord><cel><ra>130.0</ra><dec>-45.0</dec></cel></coord>\
             <en>1.5</en><det_time>10</det_time></photon>",
        )
        .unwrap();
        let out = op.process_collect(&photon);
        assert_eq!(
            dss_xml::writer::node_to_string(&out[0]),
            "<vela><ra>130.0</ra><dec>-45.0</dec><phc>5</phc><en>1.5</en>\
             <det_time>10</det_time></vela>"
        );
    }
}
