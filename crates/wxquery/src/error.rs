//! WXQuery errors.

use std::fmt;

use dss_properties::{PropertiesError, WindowError};
use dss_xml::XmlError;

/// Errors raised while parsing, analyzing, or compiling a WXQuery
/// subscription.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryError {
    /// Syntax error at a byte offset in the query text.
    Parse { message: String, offset: usize },
    /// The query is syntactically valid WXQuery but violates a semantic
    /// rule (unbound variable, misused aggregate, …).
    Analysis(String),
    /// The query uses a WXQuery feature outside the flat fragment this
    /// implementation executes (the paper defers nested queries to future
    /// work).
    Unsupported(String),
    /// Error constructing the properties (e.g. unsatisfiable predicate —
    /// the paper rejects such subscriptions).
    Properties(PropertiesError),
    /// Invalid window specification.
    Window(WindowError),
    /// Embedded XML fragment error.
    Xml(XmlError),
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryError::Parse { message, offset } => {
                write!(f, "WXQuery syntax error at byte {offset}: {message}")
            }
            QueryError::Analysis(m) => write!(f, "WXQuery analysis error: {m}"),
            QueryError::Unsupported(m) => write!(f, "unsupported WXQuery feature: {m}"),
            QueryError::Properties(e) => write!(f, "properties error: {e}"),
            QueryError::Window(e) => write!(f, "window error: {e}"),
            QueryError::Xml(e) => write!(f, "XML error: {e}"),
        }
    }
}

impl std::error::Error for QueryError {}

impl From<PropertiesError> for QueryError {
    fn from(e: PropertiesError) -> QueryError {
        QueryError::Properties(e)
    }
}

impl From<WindowError> for QueryError {
    fn from(e: WindowError) -> QueryError {
        QueryError::Window(e)
    }
}

impl From<XmlError> for QueryError {
    fn from(e: XmlError) -> QueryError {
        QueryError::Xml(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        let e = QueryError::Parse {
            message: "expected 'in'".into(),
            offset: 12,
        };
        assert_eq!(
            e.to_string(),
            "WXQuery syntax error at byte 12: expected 'in'"
        );
        assert!(QueryError::Analysis("unbound $x".into())
            .to_string()
            .contains("unbound $x"));
        assert!(QueryError::Unsupported("nesting".into())
            .to_string()
            .contains("nesting"));
    }

    #[test]
    fn conversions() {
        let e: QueryError = PropertiesError::NoInputs.into();
        assert!(matches!(e, QueryError::Properties(_)));
    }
}
