//! Compilation of flat WXQuery subscriptions into properties and an
//! executable plan.
//!
//! The paper's approach "supports flat WXQueries without nesting" (Section
//! 3.1); nested queries are future work there and unsupported here. A flat
//! subscription has the shape
//!
//! ```text
//! <result-root>
//! { for $p in stream("s")/root/item [p]? |window|?
//!   (let $a := Φ($p/π))?
//!   (where χ)?
//!   return <t> … </t> }
//! </result-root>
//! ```
//!
//! Compilation produces (1) the [`Properties`] registered for sharing and
//! (2) the restructuring [`Template`] executed as post-processing at the
//! subscriber's super-peer.

use std::collections::BTreeSet;

use dss_engine::Template;
use dss_predicate::{Atom, PredicateGraph};
use dss_properties::{
    AggregationSpec, InputProperties, Operator, ProjectionSpec, Properties, ResultFilter,
    WindowOutputSpec, WindowSpec,
};
use dss_xml::Path;

use crate::ast::{Clause, Condition, Content, Expr, Flwr, ForSource, PredTerm, WindowAst};
use crate::error::QueryError;
use crate::parse::parse_query;

/// A fully compiled flat WXQuery subscription.
#[derive(Debug, Clone)]
pub struct CompiledQuery {
    /// Name of the referenced input data stream.
    pub input_stream: String,
    /// Expected stream root element name (first step of the for path).
    pub stream_root: String,
    /// Item element name (second step of the for path).
    pub item_name: String,
    /// Properties registered for this subscription (used for sharing).
    pub properties: Properties,
    /// Aggregation spec, if the query aggregates.
    pub aggregation: Option<AggregationSpec>,
    /// Window-output spec, if the query returns raw window contents.
    pub window_output: Option<WindowOutputSpec>,
    /// Restructuring template (the `return` clause).
    pub template: Template,
    /// Root element name of the produced result stream.
    pub result_root: String,
}

impl CompiledQuery {
    /// The restructuring (post-processing) operator for this query.
    pub fn restructure_op(&self) -> dss_engine::RestructureOp {
        match (&self.aggregation, &self.window_output) {
            (Some(spec), _) => {
                dss_engine::RestructureOp::for_aggregate(self.template.clone(), spec.op)
            }
            (None, Some(_)) => dss_engine::RestructureOp::for_window(self.template.clone()),
            (None, None) => dss_engine::RestructureOp::new(self.template.clone()),
        }
    }

    /// The single input's operator chain.
    pub fn operator_chain(&self) -> &[Operator] {
        self.properties.inputs()[0].operators()
    }
}

/// Parses and compiles a WXQuery subscription text.
pub fn compile_query(text: &str) -> Result<CompiledQuery, QueryError> {
    compile_expr(&parse_query(text)?)
}

/// Compiles a parsed WXQuery expression.
pub fn compile_expr(expr: &Expr) -> Result<CompiledQuery, QueryError> {
    // Unwrap the optional result-root element constructor.
    let (result_root, flwr) = match expr {
        Expr::Element(el) => {
            let mut flwr = None;
            for c in &el.content {
                match c {
                    Content::Enclosed(Expr::Flwr(f)) => {
                        if flwr.replace(f).is_some() {
                            return Err(QueryError::Unsupported(
                                "multiple FLWR expressions in the result constructor".into(),
                            ));
                        }
                    }
                    Content::Text(_) => {}
                    _ => {
                        return Err(QueryError::Unsupported(
                            "the result constructor must contain exactly one enclosed \
                             FLWR expression"
                                .into(),
                        ))
                    }
                }
            }
            let f = flwr.ok_or_else(|| {
                QueryError::Unsupported("the result constructor contains no FLWR expression".into())
            })?;
            (el.tag.clone(), f)
        }
        Expr::Flwr(f) => ("result".to_string(), f),
        _ => {
            return Err(QueryError::Unsupported(
                "a subscription must be an element constructor enclosing a FLWR expression, \
                 or a FLWR expression"
                    .into(),
            ))
        }
    };
    compile_flwr(result_root, flwr)
}

fn compile_flwr(result_root: String, flwr: &Flwr) -> Result<CompiledQuery, QueryError> {
    // ---- clauses ---------------------------------------------------------
    let mut for_clause = None;
    let mut let_clause = None;
    for clause in &flwr.clauses {
        match clause {
            Clause::For { .. } => {
                if for_clause.replace(clause).is_some() {
                    return Err(QueryError::Unsupported(
                        "multiple for clauses (multi-stream combination happens in \
                         post-processing and is outside the flat fragment)"
                            .into(),
                    ));
                }
            }
            Clause::Let { .. } => {
                if let_clause.replace(clause).is_some() {
                    return Err(QueryError::Unsupported(
                        "multiple let clauses in one FLWR expression".into(),
                    ));
                }
            }
        }
    }
    let Some(Clause::For {
        var: for_var,
        source,
        path,
        conditions,
        window,
    }) = for_clause
    else {
        return Err(QueryError::Analysis(
            "subscription has no for clause".into(),
        ));
    };
    let ForSource::Stream(stream_name) = source else {
        return Err(QueryError::Unsupported(
            "for clauses must range over stream(…) in the flat fragment".into(),
        ));
    };
    if path.len() != 2 {
        return Err(QueryError::Unsupported(format!(
            "the for-clause path must have exactly two steps (stream root / item), got {path:?}"
        )));
    }
    let stream_root = path.steps()[0].as_str().to_string();
    let item_name = path.steps()[1].as_str().to_string();

    // ---- predicates ------------------------------------------------------
    let mut selection_atoms: Vec<Atom> = Vec::new();
    let mut filter = ResultFilter::none();
    let let_var = match let_clause {
        Some(Clause::Let { var, .. }) => Some(var.as_str()),
        _ => None,
    };
    let add_condition = |cond: &Condition,
                         selection_atoms: &mut Vec<Atom>,
                         filter: &mut ResultFilter|
     -> Result<(), QueryError> {
        for atom in cond {
            if atom.lhs.var == *for_var {
                if atom.lhs.path.is_empty() {
                    return Err(QueryError::Analysis(format!(
                        "predicate compares the whole item ${for_var}; compare an element \
                             path instead"
                    )));
                }
                let converted = match &atom.rhs {
                    PredTerm::Const(c) => Atom::var_const(atom.lhs.path.clone(), atom.op, *c),
                    PredTerm::VarPlus(w, c) => {
                        if w.var != *for_var {
                            return Err(QueryError::Analysis(format!(
                                "predicate mixes variables ${} and ${}",
                                atom.lhs.var, w.var
                            )));
                        }
                        Atom::var_var(atom.lhs.path.clone(), atom.op, w.path.clone(), *c)
                    }
                };
                selection_atoms.push(converted);
            } else if Some(atom.lhs.var.as_str()) == let_var {
                if !atom.lhs.path.is_empty() {
                    return Err(QueryError::Analysis(
                        "aggregation results are scalar; a path below the aggregate \
                             variable is meaningless"
                            .into(),
                    ));
                }
                match &atom.rhs {
                    PredTerm::Const(c) => filter.conditions.push((atom.op, *c)),
                    PredTerm::VarPlus(..) => {
                        return Err(QueryError::Unsupported(
                            "aggregate filters must compare against constants".into(),
                        ))
                    }
                }
            } else {
                return Err(QueryError::Analysis(format!(
                    "unbound variable ${} in predicate",
                    atom.lhs.var
                )));
            }
        }
        Ok(())
    };
    add_condition(conditions, &mut selection_atoms, &mut filter)?;
    add_condition(&flwr.where_, &mut selection_atoms, &mut filter)?;

    let selection = PredicateGraph::from_atoms(&selection_atoms);

    // ---- aggregation -----------------------------------------------------
    let aggregation: Option<AggregationSpec> = match let_clause {
        Some(Clause::Let { var: _, op, source }) => {
            if source.var != *for_var {
                return Err(QueryError::Analysis(format!(
                    "aggregation source ${} is not the for variable ${for_var}",
                    source.var
                )));
            }
            let Some(window_ast) = window else {
                return Err(QueryError::Analysis(
                    "window-based aggregation requires a data window on the for clause".into(),
                ));
            };
            let window = build_window(window_ast)?;
            Some(AggregationSpec {
                op: *op,
                element: source.path.clone(),
                window,
                pre_selection: selection.clone(),
                result_filter: filter.clone(),
            })
        }
        _ => {
            if !filter.is_trivial() {
                return Err(QueryError::Analysis(
                    "filter references an aggregate variable but there is no let clause".into(),
                ));
            }
            None
        }
    };
    // A window without aggregation means the query returns the raw window
    // contents (the cost model's third result class).
    let window_output: Option<WindowOutputSpec> = match (&aggregation, window) {
        (None, Some(window_ast)) => Some(WindowOutputSpec {
            window: build_window(window_ast)?,
            pre_selection: selection.clone(),
        }),
        _ => None,
    };

    // ---- template + projection -------------------------------------------
    let mut output_paths: BTreeSet<Path> = BTreeSet::new();
    let template = build_template(
        &flwr.ret,
        for_var,
        let_var,
        aggregation.is_some(),
        window_output.is_some(),
        &mut output_paths,
    )?;

    let mut operators: Vec<Operator> = Vec::new();
    if !selection.is_trivial() {
        operators.push(Operator::Selection(selection.clone()));
    }
    match (&aggregation, &window_output) {
        (Some(spec), _) => operators.push(Operator::Aggregation(spec.clone())),
        (None, Some(spec)) => operators.push(Operator::WindowOutput(spec.clone())),
        (None, None) => {
            let referenced: BTreeSet<Path> = output_paths
                .iter()
                .cloned()
                .chain(selection.variables())
                .collect();
            operators.push(Operator::Projection(ProjectionSpec {
                output: output_paths,
                referenced,
            }));
        }
    }

    let properties = Properties::single(InputProperties::new(stream_name.clone(), operators)?);

    Ok(CompiledQuery {
        input_stream: stream_name.clone(),
        stream_root,
        item_name,
        properties,
        aggregation,
        window_output,
        template,
        result_root,
    })
}

fn build_window(ast: &WindowAst) -> Result<WindowSpec, QueryError> {
    Ok(match ast {
        WindowAst::Count { size, step } => WindowSpec::count(*size, *step)?,
        WindowAst::Diff {
            reference,
            size,
            step,
        } => WindowSpec::diff(reference.clone(), *size, *step)?,
    })
}

/// Lowers a `return` expression to a template, collecting the item paths it
/// outputs.
fn build_template(
    expr: &Expr,
    for_var: &str,
    let_var: Option<&str>,
    has_agg: bool,
    has_window: bool,
    output_paths: &mut BTreeSet<Path>,
) -> Result<Template, QueryError> {
    match expr {
        Expr::Element(el) => {
            let mut children = Vec::new();
            for c in &el.content {
                match c {
                    Content::Element(nested) => {
                        children.push(build_template(
                            &Expr::Element(nested.clone()),
                            for_var,
                            let_var,
                            has_agg,
                            has_window,
                            output_paths,
                        )?);
                    }
                    Content::Enclosed(inner) => {
                        children.push(build_template(
                            inner,
                            for_var,
                            let_var,
                            has_agg,
                            has_window,
                            output_paths,
                        )?);
                    }
                    Content::Text(t) => children.push(Template::Text(t.clone())),
                }
            }
            Ok(Template::Element {
                tag: (&el.tag).into(),
                children,
            })
        }
        Expr::PathOutput(vp) => {
            if vp.var == for_var {
                if has_agg {
                    return Err(QueryError::Unsupported(
                        "returning raw item data alongside a window aggregation is outside \
                         the flat fragment"
                            .into(),
                    ));
                }
                if has_window {
                    // The window variable $w denotes the window contents.
                    if !vp.path.is_empty() {
                        return Err(QueryError::Unsupported(
                            "paths below the window variable are not supported; return \
                             the whole window with { $w }"
                                .into(),
                        ));
                    }
                    return Ok(Template::WindowContents);
                }
                output_paths.insert(vp.path.clone());
                Ok(Template::Subtree(vp.path.clone()))
            } else if Some(vp.var.as_str()) == let_var {
                if !vp.path.is_empty() {
                    return Err(QueryError::Analysis(
                        "aggregate values are scalar; no path below them exists".into(),
                    ));
                }
                Ok(Template::AggValue)
            } else {
                Err(QueryError::Analysis(format!(
                    "unbound variable ${} in return clause",
                    vp.var
                )))
            }
        }
        Expr::Sequence(items) => {
            // A sequence in a return clause concatenates constructions; we
            // model it as an anonymous element group, which only makes sense
            // nested — reject at top level for clarity.
            let mut children = Vec::new();
            for i in items {
                children.push(build_template(
                    i,
                    for_var,
                    let_var,
                    has_agg,
                    has_window,
                    output_paths,
                )?);
            }
            Ok(Template::Element {
                tag: "sequence".into(),
                children,
            })
        }
        Expr::Flwr(_) => Err(QueryError::Unsupported(
            "nested FLWR expressions (the paper's future work) are not supported".into(),
        )),
        Expr::If { .. } => Err(QueryError::Unsupported(
            "conditional expressions in return clauses are not part of the flat fragment".into(),
        )),
    }
}
