//! Abstract syntax of WXQuery (Definition 2.1).

use dss_predicate::CompOp;
use dss_properties::AggOp;
use dss_xml::{Decimal, Path};

/// A variable-rooted path `$v/π` (or the bare variable `$v` with an empty
/// path). Inside a path condition `[p]`, paths are written without a
/// variable; the parser attributes them to the enclosing `for` variable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VarPath {
    /// Variable name without the `$`.
    pub var: String,
    /// Relative child-axis path below the variable (may be empty).
    pub path: Path,
}

impl VarPath {
    /// Builds a variable-rooted path.
    pub fn new(var: impl Into<String>, path: Path) -> VarPath {
        VarPath {
            var: var.into(),
            path,
        }
    }
}

/// Right-hand side of an atomic predicate: a constant `c` or `$w/π + c`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PredTerm {
    Const(Decimal),
    VarPlus(VarPath, Decimal),
}

/// An atomic predicate `$v θ c` or `$v θ $w + c` (Section 2).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PredAtom {
    pub lhs: VarPath,
    pub op: CompOp,
    pub rhs: PredTerm,
}

/// A conjunction of atomic predicates (the paper's χ / `[p]`).
pub type Condition = Vec<PredAtom>;

/// A data window written `|count Δ [step µ]|` or `|π diff Δ [step µ]|`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WindowAst {
    Count {
        size: Decimal,
        step: Option<Decimal>,
    },
    Diff {
        reference: Path,
        size: Decimal,
        step: Option<Decimal>,
    },
}

/// Source of a `for` binding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ForSource {
    /// `stream("name")` — a possibly infinite data stream.
    Stream(String),
    /// `doc("name")` — a document node.
    Doc(String),
    /// Another bound variable.
    Var(String),
}

/// A `for` or `let` clause of a FLWR expression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Clause {
    /// `for $x in $y/π [p]? |window|?`
    For {
        var: String,
        source: ForSource,
        /// Path applied to the source (for `stream(...)/photons/photon`
        /// this is `photons/photon`: stream root, then item steps).
        path: Path,
        /// Conditions embedded in the path (`[p]`), attributed to the
        /// bound variable.
        conditions: Condition,
        window: Option<WindowAst>,
    },
    /// `let $a := Φ($y/π)`
    Let {
        var: String,
        op: AggOp,
        source: VarPath,
    },
}

/// A FLWR expression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Flwr {
    pub clauses: Vec<Clause>,
    pub where_: Condition,
    pub ret: Box<Expr>,
}

/// Content of a direct element constructor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Content {
    /// A nested direct element constructor.
    Element(ElementCtor),
    /// An enclosed expression `{ α }`.
    Enclosed(Expr),
    /// Literal text.
    Text(String),
}

/// A direct element constructor `<t> … </t>` or `<t/>`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ElementCtor {
    pub tag: String,
    pub content: Vec<Content>,
}

/// A WXQuery expression (Definition 2.1).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Expr {
    /// Expressions 1–2: element constructors.
    Element(ElementCtor),
    /// Expression 3: FLWR.
    Flwr(Flwr),
    /// Expression 4: `if χ then α else β`.
    If {
        cond: Condition,
        then: Box<Expr>,
        els: Box<Expr>,
    },
    /// Expressions 5–6: `$z/π` output (empty path for bare `$z`).
    PathOutput(VarPath),
    /// Expression 7: sequence `( α, β, … )`.
    Sequence(Vec<Expr>),
}

impl Expr {
    /// Walks the expression tree, yielding every FLWR in evaluation order.
    pub fn flwrs(&self) -> Vec<&Flwr> {
        fn walk<'a>(e: &'a Expr, out: &mut Vec<&'a Flwr>) {
            match e {
                Expr::Flwr(f) => {
                    out.push(f);
                    walk(&f.ret, out);
                }
                Expr::Element(el) => walk_ctor(el, out),
                Expr::If { then, els, .. } => {
                    walk(then, out);
                    walk(els, out);
                }
                Expr::Sequence(items) => {
                    for i in items {
                        walk(i, out);
                    }
                }
                Expr::PathOutput(_) => {}
            }
        }
        fn walk_ctor<'a>(el: &'a ElementCtor, out: &mut Vec<&'a Flwr>) {
            for c in &el.content {
                match c {
                    Content::Enclosed(inner) => walk(inner, out),
                    Content::Element(nested) => walk_ctor(nested, out),
                    Content::Text(_) => {}
                }
            }
        }
        let mut out = Vec::new();
        walk(self, &mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flwrs_walks_nested_structure() {
        let inner = Flwr {
            clauses: vec![],
            where_: vec![],
            ret: Box::new(Expr::PathOutput(VarPath::new("p", Path::this()))),
        };
        let outer = Expr::Element(ElementCtor {
            tag: "photons".into(),
            content: vec![Content::Enclosed(Expr::Flwr(inner.clone()))],
        });
        assert_eq!(outer.flwrs().len(), 1);
        assert_eq!(outer.flwrs()[0], &inner);
    }

    #[test]
    fn flwrs_in_sequence_and_if() {
        let mk = || {
            Expr::Flwr(Flwr {
                clauses: vec![],
                where_: vec![],
                ret: Box::new(Expr::PathOutput(VarPath::new("p", Path::this()))),
            })
        };
        let seq = Expr::Sequence(vec![mk(), mk()]);
        assert_eq!(seq.flwrs().len(), 2);
        let iff = Expr::If {
            cond: vec![],
            then: Box::new(mk()),
            els: Box::new(mk()),
        };
        assert_eq!(iff.flwrs().len(), 2);
    }
}
