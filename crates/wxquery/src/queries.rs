//! The paper's four example queries, verbatim (Sections 1 and 2).
//!
//! These are used across the workspace's tests, examples, and benchmarks.

/// Query 1: the Vela supernova remnant region.
pub const Q1: &str = r#"
<photons>
{ for $p in stream("photons")/photons/photon
  where $p/coord/cel/ra >= 120.0 and $p/coord/cel/ra <= 138.0
  and $p/coord/cel/dec >= -49.0 and $p/coord/cel/dec <= -40.0
  return <vela> { $p/coord/cel/ra } { $p/coord/cel/dec }
  { $p/phc } { $p/en } { $p/det_time } </vela> }
</photons>
"#;

/// Query 2: the RX J0852.0-4622 region (contained in Vela) with an energy
/// cut of at least 1.3 keV.
pub const Q2: &str = r#"
<photons>
{ for $p in stream("photons")/photons/photon
  where $p/en >= 1.3
  and $p/coord/cel/ra >= 130.5 and $p/coord/cel/ra <= 135.5
  and $p/coord/cel/dec >= -48.0 and $p/coord/cel/dec <= -45.0
  return <rxj> { $p/coord/cel/ra } { $p/coord/cel/dec }
  { $p/en } { $p/det_time } </rxj> }
</photons>
"#;

/// Query 3: average energy over |det_time diff 20 step 10| windows in the
/// Vela region.
pub const Q3: &str = r#"
<photons>
{ for $w in stream("photons")/photons/photon
  [coord/cel/ra >= 120.0 and coord/cel/ra <= 138.0
  and coord/cel/dec >= -49.0 and coord/cel/dec <= -40.0]
  |det_time diff 20 step 10|
  let $a := avg($w/en)
  return <avg_en> { $a } </avg_en> }
</photons>
"#;

/// Query 4: like Query 3 but with |det_time diff 60 step 40| windows and a
/// filter on the aggregate value.
pub const Q4: &str = r#"
<photons>
{ for $w in stream("photons")/photons/photon
  [coord/cel/ra >= 120.0 and coord/cel/ra <= 138.0
  and coord/cel/dec >= -49.0 and coord/cel/dec <= -40.0]
  |det_time diff 60 step 40|
  let $a := avg($w/en)
  where $a >= 1.3
  return <avg_en> { $a } </avg_en> }
</photons>
"#;

/// All four queries with their paper names.
pub const ALL: [(&str, &str); 4] = [("Q1", Q1), ("Q2", Q2), ("Q3", Q3), ("Q4", Q4)];
