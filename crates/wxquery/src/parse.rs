//! Recursive-descent parser for WXQuery (Definition 2.1).
//!
//! The grammar mixes XML syntax (direct element constructors) with XQuery
//! syntax (FLWR expressions, `{ }` enclosures, comparison operators), so the
//! parser works directly on a character cursor instead of a separate token
//! stream — `<` means "start tag" in expression position and "less than"
//! inside conditions, which a modeless lexer cannot distinguish.

use dss_predicate::CompOp;
use dss_properties::AggOp;
use dss_xml::{text, Decimal, Path};

use crate::ast::{
    Clause, Condition, Content, ElementCtor, Expr, Flwr, ForSource, PredAtom, PredTerm, VarPath,
    WindowAst,
};
use crate::error::QueryError;

/// Parses a complete WXQuery subscription.
pub fn parse_query(input: &str) -> Result<Expr, QueryError> {
    let mut p = Parser { input, pos: 0 };
    let expr = p.parse_expr(None)?;
    p.skip_ws();
    if p.pos != p.input.len() {
        return Err(p.err("unexpected trailing input"));
    }
    Ok(expr)
}

struct Parser<'a> {
    input: &'a str,
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: impl Into<String>) -> QueryError {
        QueryError::Parse {
            message: message.into(),
            offset: self.pos,
        }
    }

    fn rest(&self) -> &'a str {
        &self.input[self.pos..]
    }

    fn peek(&self) -> Option<char> {
        self.rest().chars().next()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.pos += c.len_utf8();
        Some(c)
    }

    /// Skips whitespace and XQuery comments `(: … :)`.
    fn skip_ws(&mut self) {
        loop {
            let before = self.pos;
            while self.peek().is_some_and(char::is_whitespace) {
                self.bump();
            }
            if self.rest().starts_with("(:") {
                match self.rest().find(":)") {
                    Some(end) => self.pos += end + 2,
                    None => {
                        self.pos = self.input.len();
                        return;
                    }
                }
            }
            if self.pos == before {
                return;
            }
        }
    }

    /// Consumes the literal `s` if it is next (after whitespace).
    fn eat(&mut self, s: &str) -> bool {
        self.skip_ws();
        if self.rest().starts_with(s) {
            self.pos += s.len();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, s: &str) -> Result<(), QueryError> {
        if self.eat(s) {
            Ok(())
        } else {
            Err(self.err(format!("expected {s:?}")))
        }
    }

    /// `true` if the keyword `kw` is next (whole word).
    fn peek_keyword(&mut self, kw: &str) -> bool {
        self.skip_ws();
        let rest = self.rest();
        rest.starts_with(kw)
            && !rest[kw.len()..]
                .chars()
                .next()
                .is_some_and(text::is_name_char)
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.peek_keyword(kw) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<(), QueryError> {
        if self.eat_keyword(kw) {
            Ok(())
        } else {
            Err(self.err(format!("expected keyword {kw:?}")))
        }
    }

    /// Parses an XML-name-like identifier.
    fn ident(&mut self) -> Result<String, QueryError> {
        self.skip_ws();
        let start = self.pos;
        match self.peek() {
            Some(c) if text::is_name_start(c) => {
                self.bump();
            }
            _ => return Err(self.err("expected a name")),
        }
        while self.peek().is_some_and(text::is_name_char) {
            self.bump();
        }
        Ok(self.input[start..self.pos].to_string())
    }

    /// Parses a decimal number with optional sign.
    fn number(&mut self) -> Result<Decimal, QueryError> {
        self.skip_ws();
        let start = self.pos;
        if matches!(self.peek(), Some('-') | Some('+')) {
            self.bump();
        }
        let digits_start = self.pos;
        while self.peek().is_some_and(|c| c.is_ascii_digit()) {
            self.bump();
        }
        if self.peek() == Some('.') {
            self.bump();
            while self.peek().is_some_and(|c| c.is_ascii_digit()) {
                self.bump();
            }
        }
        if self.pos == digits_start {
            return Err(self.err("expected a number"));
        }
        self.input[start..self.pos]
            .parse()
            .map_err(|_| self.err("invalid decimal literal"))
    }

    /// Parses a double-quoted string literal.
    fn string_lit(&mut self) -> Result<String, QueryError> {
        self.expect("\"")?;
        let start = self.pos;
        while let Some(c) = self.peek() {
            if c == '"' {
                let s = self.input[start..self.pos].to_string();
                self.bump();
                return Ok(s);
            }
            self.bump();
        }
        Err(self.err("unterminated string literal"))
    }

    /// Parses `step/step/…` (no leading slash).
    fn rel_path(&mut self) -> Result<Path, QueryError> {
        let mut path = Path::this();
        loop {
            let step = self.ident()?;
            path = path.child(&step).map_err(|e| self.err(e.to_string()))?;
            // A following '/' continues the path only if a name follows
            // (otherwise it may be the '/' of "/>").
            let save = self.pos;
            if self.peek() == Some('/') {
                self.bump();
                if self.peek().is_some_and(text::is_name_start) {
                    continue;
                }
                self.pos = save;
            }
            return Ok(path);
        }
    }

    /// `$var` with optional `/path`.
    fn var_path(&mut self) -> Result<VarPath, QueryError> {
        self.expect("$")?;
        let var = self.ident()?;
        let path = if self.peek() == Some('/') {
            self.bump();
            self.rel_path()?
        } else {
            Path::this()
        };
        Ok(VarPath::new(var, path))
    }

    // ----- expressions ------------------------------------------------

    /// Parses one WXQuery expression. `ctx_var` is the variable that bare
    /// paths in conditions refer to (set inside `[p]` path conditions).
    fn parse_expr(&mut self, ctx_var: Option<&str>) -> Result<Expr, QueryError> {
        self.skip_ws();
        match self.peek() {
            Some('<') => Ok(Expr::Element(self.element_ctor()?)),
            Some('(') => self.sequence(ctx_var),
            Some('$') => Ok(Expr::PathOutput(self.var_path()?)),
            _ if self.peek_keyword("for") || self.peek_keyword("let") => {
                Ok(Expr::Flwr(self.flwr(ctx_var)?))
            }
            _ if self.peek_keyword("if") => self.if_expr(ctx_var),
            _ => Err(self.err("expected an expression")),
        }
    }

    fn sequence(&mut self, ctx_var: Option<&str>) -> Result<Expr, QueryError> {
        self.expect("(")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(')') {
            self.bump();
            return Ok(Expr::Sequence(items));
        }
        loop {
            items.push(self.parse_expr(ctx_var)?);
            if self.eat(",") {
                continue;
            }
            self.expect(")")?;
            return Ok(Expr::Sequence(items));
        }
    }

    fn if_expr(&mut self, ctx_var: Option<&str>) -> Result<Expr, QueryError> {
        self.expect_keyword("if")?;
        let cond = self.condition(ctx_var)?;
        self.expect_keyword("then")?;
        let then = self.parse_expr(ctx_var)?;
        self.expect_keyword("else")?;
        let els = self.parse_expr(ctx_var)?;
        Ok(Expr::If {
            cond,
            then: Box::new(then),
            els: Box::new(els),
        })
    }

    fn flwr(&mut self, ctx_var: Option<&str>) -> Result<Flwr, QueryError> {
        let mut clauses = Vec::new();
        loop {
            if self.peek_keyword("for") {
                self.pos += 3;
                clauses.push(self.for_clause()?);
            } else if self.peek_keyword("let") {
                self.pos += 3;
                clauses.push(self.let_clause()?);
            } else {
                break;
            }
        }
        if clauses.is_empty() {
            return Err(self.err("FLWR expression needs at least one for/let clause"));
        }
        // Bare paths in the where clause default to the innermost for var.
        let for_var: Option<String> = clauses.iter().rev().find_map(|c| match c {
            Clause::For { var, .. } => Some(var.clone()),
            Clause::Let { .. } => None,
        });
        let where_ = if self.eat_keyword("where") {
            self.condition(for_var.as_deref().or(ctx_var))?
        } else {
            Vec::new()
        };
        self.expect_keyword("return")?;
        let ret = self.parse_expr(for_var.as_deref().or(ctx_var))?;
        Ok(Flwr {
            clauses,
            where_,
            ret: Box::new(ret),
        })
    }

    fn for_clause(&mut self) -> Result<Clause, QueryError> {
        self.expect("$")?;
        let var = self.ident()?;
        self.expect_keyword("in")?;
        self.skip_ws();
        let source = if self.peek_keyword("stream") {
            self.pos += "stream".len();
            self.expect("(")?;
            self.skip_ws();
            let name = self.string_lit()?;
            self.expect(")")?;
            ForSource::Stream(name)
        } else if self.peek_keyword("doc") {
            self.pos += "doc".len();
            self.expect("(")?;
            self.skip_ws();
            let name = self.string_lit()?;
            self.expect(")")?;
            ForSource::Doc(name)
        } else if self.peek() == Some('$') {
            self.bump();
            ForSource::Var(self.ident()?)
        } else {
            return Err(self.err("expected stream(…), doc(…), or $var"));
        };
        // Path after the source, with optional [p] condition blocks. The
        // flat fragment only evaluates conditions attached to the *final*
        // step (they then constrain the bound item).
        let mut path = Path::this();
        let mut conditions: Condition = Vec::new();
        let mut condition_depth: Option<usize> = None;
        loop {
            self.skip_ws();
            if self.peek() == Some('/') {
                self.bump();
                let step = self.ident()?;
                path = path.child(&step).map_err(|e| self.err(e.to_string()))?;
                continue;
            }
            if self.peek() == Some('[') {
                self.bump();
                let mut block = self.condition(Some(&var))?;
                self.expect("]")?;
                conditions.append(&mut block);
                condition_depth = Some(path.len());
                continue;
            }
            break;
        }
        if let Some(depth) = condition_depth {
            if depth != path.len() {
                return Err(QueryError::Unsupported(
                    "path conditions are only supported on the final step of a for-clause path"
                        .into(),
                ));
            }
        }
        // Optional window |count Δ step µ| / |π diff Δ step µ|.
        self.skip_ws();
        let window = if self.peek() == Some('|') {
            self.bump();
            Some(self.window()?)
        } else {
            None
        };
        Ok(Clause::For {
            var,
            source,
            path,
            conditions,
            window,
        })
    }

    fn window(&mut self) -> Result<WindowAst, QueryError> {
        self.skip_ws();
        let w = if self.peek_keyword("count") {
            self.pos += "count".len();
            let size = self.number()?;
            let step = if self.eat_keyword("step") {
                Some(self.number()?)
            } else {
                None
            };
            WindowAst::Count { size, step }
        } else {
            let reference = self.rel_path()?;
            self.expect_keyword("diff")?;
            let size = self.number()?;
            let step = if self.eat_keyword("step") {
                Some(self.number()?)
            } else {
                None
            };
            WindowAst::Diff {
                reference,
                size,
                step,
            }
        };
        self.expect("|")?;
        Ok(w)
    }

    fn let_clause(&mut self) -> Result<Clause, QueryError> {
        self.expect("$")?;
        let var = self.ident()?;
        self.expect(":=")?;
        let op_name = self.ident()?;
        let op = AggOp::parse(&op_name)
            .ok_or_else(|| self.err(format!("unknown aggregation operator {op_name:?}")))?;
        self.expect("(")?;
        let source = self.var_path()?;
        self.expect(")")?;
        Ok(Clause::Let { var, op, source })
    }

    // ----- conditions ---------------------------------------------------

    fn condition(&mut self, ctx_var: Option<&str>) -> Result<Condition, QueryError> {
        let mut atoms = vec![self.atom(ctx_var)?];
        while self.eat_keyword("and") {
            atoms.push(self.atom(ctx_var)?);
        }
        Ok(atoms)
    }

    /// One operand of an atomic predicate.
    fn operand(&mut self, ctx_var: Option<&str>) -> Result<Operand, QueryError> {
        self.skip_ws();
        match self.peek() {
            Some('$') => Ok(Operand::Var(self.var_path()?)),
            Some(c) if c.is_ascii_digit() || c == '-' || c == '+' || c == '.' => {
                Ok(Operand::Const(self.number()?))
            }
            Some(c) if text::is_name_start(c) => {
                let path = self.rel_path()?;
                match ctx_var {
                    Some(v) => Ok(Operand::Var(VarPath::new(v, path))),
                    None => Err(self.err(
                        "bare paths in this condition have no context variable; \
                         write $var/path",
                    )),
                }
            }
            _ => Err(self.err("expected a predicate operand")),
        }
    }

    fn comp_op(&mut self) -> Result<CompOp, QueryError> {
        self.skip_ws();
        for (s, op) in [
            ("<=", CompOp::Le),
            (">=", CompOp::Ge),
            ("=", CompOp::Eq),
            ("<", CompOp::Lt),
            (">", CompOp::Gt),
        ] {
            if self.rest().starts_with(s) {
                self.pos += s.len();
                return Ok(op);
            }
        }
        Err(self.err("expected a comparison operator (=, <, <=, >, >=)"))
    }

    fn atom(&mut self, ctx_var: Option<&str>) -> Result<PredAtom, QueryError> {
        let lhs = self.operand(ctx_var)?;
        let op = self.comp_op()?;
        let rhs = self.operand(ctx_var)?;
        // Optional "± c" after a variable right-hand side ($v θ $w + c).
        let rhs = match rhs {
            Operand::Var(v) => {
                self.skip_ws();
                let offset = if self.peek() == Some('+') {
                    self.bump();
                    self.number()?
                } else if self.rest().starts_with('-') && !self.rest()[1..].trim_start().is_empty()
                {
                    // Only a numeric offset; '-' not followed by digits is
                    // left alone (would be a syntax error downstream).
                    let save = self.pos;
                    self.bump();
                    match self.number() {
                        Ok(n) => -n,
                        Err(_) => {
                            self.pos = save;
                            Decimal::ZERO
                        }
                    }
                } else {
                    Decimal::ZERO
                };
                Operand::VarPlus(v, offset)
            }
            other => other,
        };
        // Normalize so the left side is a variable.
        match (lhs, rhs) {
            (Operand::Var(v), Operand::Const(c)) => Ok(PredAtom {
                lhs: v,
                op,
                rhs: PredTerm::Const(c),
            }),
            (Operand::Var(v), Operand::VarPlus(w, c)) => Ok(PredAtom {
                lhs: v,
                op,
                rhs: PredTerm::VarPlus(w, c),
            }),
            (Operand::Var(v), Operand::Var(w)) => Ok(PredAtom {
                lhs: v,
                op,
                rhs: PredTerm::VarPlus(w, Decimal::ZERO),
            }),
            (Operand::Const(c), Operand::Var(v)) | (Operand::Const(c), Operand::VarPlus(v, _)) => {
                // c θ $v  ⇔  $v θ.flip() c (offsets on a left constant are
                // not part of the grammar).
                Ok(PredAtom {
                    lhs: v,
                    op: op.flip(),
                    rhs: PredTerm::Const(c),
                })
            }
            (Operand::Const(_), Operand::Const(_)) => {
                Err(self.err("a predicate must reference at least one element path"))
            }
            (Operand::VarPlus(..), _) => unreachable!("offsets only parsed on the right"),
        }
    }

    // ----- element constructors ------------------------------------------

    fn element_ctor(&mut self) -> Result<ElementCtor, QueryError> {
        self.expect("<")?;
        let tag = self.ident()?;
        self.skip_ws();
        if self.eat("/>") {
            return Ok(ElementCtor {
                tag,
                content: Vec::new(),
            });
        }
        self.expect(">")?;
        let mut content = Vec::new();
        loop {
            // Text runs up to the next markup character.
            let text_start = self.pos;
            while let Some(c) = self.peek() {
                if c == '<' || c == '{' {
                    break;
                }
                self.bump();
            }
            let raw = &self.input[text_start..self.pos];
            let trimmed = raw.trim();
            if !trimmed.is_empty() {
                content.push(Content::Text(trimmed.to_string()));
            }
            match self.peek() {
                Some('<') => {
                    if self.rest().starts_with("</") {
                        self.pos += 2;
                        let close = self.ident()?;
                        self.expect(">")?;
                        if close != tag {
                            return Err(self.err(format!(
                                "mismatched element constructor: <{tag}> closed by </{close}>"
                            )));
                        }
                        return Ok(ElementCtor { tag, content });
                    }
                    content.push(Content::Element(self.element_ctor()?));
                }
                Some('{') => {
                    self.bump();
                    let inner = self.parse_expr(None)?;
                    self.expect("}")?;
                    content.push(Content::Enclosed(inner));
                }
                _ => return Err(self.err(format!("unclosed element constructor <{tag}>"))),
            }
        }
    }
}

/// Intermediate operand representation during atom parsing.
enum Operand {
    Const(Decimal),
    Var(VarPath),
    VarPlus(VarPath, Decimal),
}
