//! Shrinking-friendly random WXQuery specifications (feature `testing`).
//!
//! The differential harness needs random *flat* subscriptions that always
//! compile, render back to WXQuery text, and reduce to readable minimal
//! counterexamples. [`QuerySpec`] is the structured form: strategies
//! produce it, [`QuerySpec::to_text`] renders it through the crate's own
//! [`ast`](crate::ast) `Display` normal form, and [`QuerySpec::shrink`]
//! proposes one-step simplifications (drop an atom, drop the window step,
//! drop the result filter, …) for a greedy shrinking loop — the vendored
//! `proptest` has no built-in shrinking.
//!
//! The vocabulary follows the RASS photon schema used everywhere else in
//! the workspace (`en`, `det_time`, `phc`, `coord/cel/ra`,
//! `coord/cel/dec`), so generated queries are meaningful against
//! `dss_rass::generator` streams as well as the harness's own items.

use proptest::prelude::*;

use dss_predicate::CompOp;
use dss_properties::AggOp;
use dss_xml::Decimal;

use crate::ast::{
    Clause, Condition, Content, ElementCtor, Expr, Flwr, ForSource, PredAtom, PredTerm, VarPath,
    WindowAst,
};
use crate::compile_query;

/// Numeric leaf paths of the photon schema, usable in predicates,
/// projections, and aggregations.
pub const SCHEMA_PATHS: &[&str] = &["en", "det_time", "phc", "coord/cel/ra", "coord/cel/dec"];

/// The ordered reference element for `diff` windows.
pub const REFERENCE_PATH: &str = "det_time";

/// One selection conjunct `item/path θ rhs`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AtomSpec {
    pub path: String,
    pub op: CompOp,
    pub rhs: RhsSpec,
}

/// Right-hand side of a selection conjunct.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RhsSpec {
    Const(Decimal),
    /// `item/path + offset` — compares two elements of the same item.
    PathPlus(String, Decimal),
}

/// A data window `|count Δ step µ|` or `|ref diff Δ step µ|`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WindowChoice {
    Count {
        size: Decimal,
        step: Option<Decimal>,
    },
    Diff {
        size: Decimal,
        step: Option<Decimal>,
    },
}

/// The `let`/`return` shape of the query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BodySpec {
    /// Selection/projection: `return <tag> { $p/path }* </tag>`.
    Project { tag: String, paths: Vec<String> },
    /// Windowed aggregation with an optional result filter on `$a`.
    Aggregate {
        tag: String,
        op: AggOp,
        element: String,
        filter: Vec<(CompOp, Decimal)>,
    },
    /// Window contents: `return <tag> { $w } </tag>`.
    Window { tag: String },
}

/// A structured flat WXQuery subscription that renders to text and
/// shrinks toward simpler queries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuerySpec {
    pub stream: String,
    pub stream_root: String,
    pub item: String,
    /// Optional enclosing result-root element constructor.
    pub result_root: Option<String>,
    pub selection: Vec<AtomSpec>,
    /// Required by `Aggregate` and `Window` bodies, absent for `Project`.
    pub window: Option<WindowChoice>,
    pub body: BodySpec,
}

impl QuerySpec {
    /// The bound variable name: `$w` for windowed queries (paper
    /// convention), `$p` otherwise.
    fn var(&self) -> &'static str {
        if self.window.is_some() {
            "w"
        } else {
            "p"
        }
    }

    /// Builds the AST; infallible by construction.
    pub fn to_ast(&self) -> Expr {
        let var = self.var().to_string();
        let vp = |path: &str| VarPath {
            var: var.clone(),
            path: path.parse().expect("schema path parses"),
        };
        let conditions: Condition = self
            .selection
            .iter()
            .map(|a| PredAtom {
                lhs: vp(&a.path),
                op: a.op,
                rhs: match &a.rhs {
                    RhsSpec::Const(c) => PredTerm::Const(*c),
                    RhsSpec::PathPlus(p, c) => PredTerm::VarPlus(vp(p), *c),
                },
            })
            .collect();
        let window = self.window.as_ref().map(|w| match w {
            WindowChoice::Count { size, step } => WindowAst::Count {
                size: *size,
                step: *step,
            },
            WindowChoice::Diff { size, step } => WindowAst::Diff {
                reference: REFERENCE_PATH.parse().expect("reference path parses"),
                size: *size,
                step: *step,
            },
        });
        let mut clauses = vec![Clause::For {
            var: var.clone(),
            source: ForSource::Stream(self.stream.clone()),
            path: format!("{}/{}", self.stream_root, self.item)
                .parse()
                .expect("stream path parses"),
            conditions,
            window,
        }];
        let mut where_: Condition = Vec::new();
        let ret = match &self.body {
            BodySpec::Project { tag, paths } => Expr::Element(ElementCtor {
                tag: tag.clone(),
                content: paths
                    .iter()
                    .map(|p| Content::Enclosed(Expr::PathOutput(vp(p))))
                    .collect(),
            }),
            BodySpec::Aggregate {
                tag,
                op,
                element,
                filter,
            } => {
                clauses.push(Clause::Let {
                    var: "a".to_string(),
                    op: *op,
                    source: vp(element),
                });
                for (op, c) in filter {
                    where_.push(PredAtom {
                        lhs: VarPath {
                            var: "a".to_string(),
                            path: "".parse().expect("empty path parses"),
                        },
                        op: *op,
                        rhs: PredTerm::Const(*c),
                    });
                }
                Expr::Element(ElementCtor {
                    tag: tag.clone(),
                    content: vec![Content::Enclosed(Expr::PathOutput(VarPath {
                        var: "a".to_string(),
                        path: "".parse().expect("empty path parses"),
                    }))],
                })
            }
            BodySpec::Window { tag } => Expr::Element(ElementCtor {
                tag: tag.clone(),
                content: vec![Content::Enclosed(Expr::PathOutput(VarPath {
                    var: var.clone(),
                    path: "".parse().expect("empty path parses"),
                }))],
            }),
        };
        let flwr = Expr::Flwr(Flwr {
            clauses,
            where_,
            ret: Box::new(ret),
        });
        match &self.result_root {
            Some(root) => Expr::Element(ElementCtor {
                tag: root.clone(),
                content: vec![Content::Enclosed(flwr)],
            }),
            None => flwr,
        }
    }

    /// Renders the subscription text (the AST `Display` normal form,
    /// which round-trips through the parser).
    pub fn to_text(&self) -> String {
        self.to_ast().to_string()
    }

    /// `true` when the rendered text compiles into an executable plan
    /// (conflicting random bounds are unsatisfiable and rejected by the
    /// compiler; strategies filter on this).
    pub fn compiles(&self) -> bool {
        compile_query(&self.to_text()).is_ok()
    }

    /// One-step simplifications, most aggressive first. Every candidate
    /// still compiles; the caller re-checks its failing property and
    /// recurses on the first candidate that still fails.
    pub fn shrink(&self) -> Vec<QuerySpec> {
        let mut out = Vec::new();
        let mut push = |candidate: QuerySpec| {
            if candidate != *self && candidate.compiles() {
                out.push(candidate);
            }
        };
        // Collapse to the simplest query of the same stream: bare
        // projection of the first output path (or none).
        if self.window.is_some() || self.selection.len() > 1 {
            let mut plain = self.clone();
            plain.window = None;
            plain.selection.truncate(1);
            plain.body = BodySpec::Project {
                tag: "x".to_string(),
                paths: match &self.body {
                    BodySpec::Project { paths, .. } => paths.iter().take(1).cloned().collect(),
                    BodySpec::Aggregate { element, .. } => vec![element.clone()],
                    BodySpec::Window { .. } => vec![REFERENCE_PATH.to_string()],
                },
            };
            push(plain);
        }
        // Drop the enclosing result root.
        if self.result_root.is_some() {
            let mut c = self.clone();
            c.result_root = None;
            push(c);
        }
        // Drop one selection atom at a time.
        for i in 0..self.selection.len() {
            let mut c = self.clone();
            c.selection.remove(i);
            push(c);
        }
        // Replace a two-path comparison with a constant one.
        for (i, atom) in self.selection.iter().enumerate() {
            if let RhsSpec::PathPlus(_, offset) = &atom.rhs {
                let mut c = self.clone();
                c.selection[i].rhs = RhsSpec::Const(*offset);
                push(c);
            }
        }
        // Make the window tumbling (drop the explicit step).
        match &self.window {
            Some(WindowChoice::Count {
                size,
                step: Some(_),
            }) => {
                let mut c = self.clone();
                c.window = Some(WindowChoice::Count {
                    size: *size,
                    step: None,
                });
                push(c);
            }
            Some(WindowChoice::Diff {
                size,
                step: Some(_),
            }) => {
                let mut c = self.clone();
                c.window = Some(WindowChoice::Diff {
                    size: *size,
                    step: None,
                });
                push(c);
            }
            _ => {}
        }
        match &self.body {
            BodySpec::Project { tag, paths } if paths.len() > 1 => {
                for i in 0..paths.len() {
                    let mut shorter = paths.clone();
                    shorter.remove(i);
                    let mut c = self.clone();
                    c.body = BodySpec::Project {
                        tag: tag.clone(),
                        paths: shorter,
                    };
                    push(c);
                }
            }
            BodySpec::Aggregate {
                tag,
                op,
                element,
                filter,
            } => {
                // Drop one filter condition at a time.
                for i in 0..filter.len() {
                    let mut shorter = filter.clone();
                    shorter.remove(i);
                    let mut c = self.clone();
                    c.body = BodySpec::Aggregate {
                        tag: tag.clone(),
                        op: *op,
                        element: element.clone(),
                        filter: shorter,
                    };
                    push(c);
                }
                // Simplify the aggregate down the lattice avg → sum → count.
                let simpler = match op {
                    AggOp::Avg => Some(AggOp::Sum),
                    AggOp::Min | AggOp::Max => Some(AggOp::Sum),
                    AggOp::Sum => Some(AggOp::Count),
                    AggOp::Count => None,
                };
                if let Some(simpler) = simpler {
                    let mut c = self.clone();
                    c.body = BodySpec::Aggregate {
                        tag: tag.clone(),
                        op: simpler,
                        element: element.clone(),
                        filter: filter.clone(),
                    };
                    push(c);
                }
            }
            _ => {}
        }
        out
    }
}

// ---------------------------------------------------------------------
// Strategies
// ---------------------------------------------------------------------

/// A decimal in `[lo, hi]` units at the given scale.
fn decimal_in(lo: i64, hi: i64, scale: u32) -> BoxedStrategy<Decimal> {
    (lo..=hi)
        .prop_map(move |u| Decimal::new(u as i128, scale))
        .boxed()
}

/// A plausible predicate constant for the schema path, inside (or near)
/// the value range `dss_rass::generator` produces.
pub fn arb_constant_for(path: &'static str) -> BoxedStrategy<Decimal> {
    match path {
        "en" => decimal_in(100, 3000, 3),
        "det_time" => decimal_in(0, 600, 1),
        "phc" => decimal_in(0, 100, 0),
        "coord/cel/ra" => decimal_in(900, 1800, 1),
        "coord/cel/dec" => decimal_in(-600, -200, 1),
        _ => decimal_in(-100, 100, 1),
    }
}

fn arb_schema_path() -> BoxedStrategy<&'static str> {
    (0usize..SCHEMA_PATHS.len())
        .prop_map(|i| SCHEMA_PATHS[i])
        .boxed()
}

fn arb_comp_op() -> BoxedStrategy<CompOp> {
    prop_oneof![
        Just(CompOp::Ge),
        Just(CompOp::Le),
        Just(CompOp::Gt),
        Just(CompOp::Lt),
    ]
}

/// One selection conjunct; mostly path-vs-constant, occasionally
/// path-vs-path-plus-offset.
pub fn arb_atom() -> BoxedStrategy<AtomSpec> {
    arb_schema_path()
        .prop_flat_map(|path| {
            (
                Just(path),
                arb_comp_op(),
                arb_constant_for(path),
                arb_schema_path(),
                0usize..8,
            )
        })
        .prop_map(|(path, op, c, other, kind)| {
            let rhs = if kind == 0 && other != path {
                // Offset scale stays at or above both operand scales.
                RhsSpec::PathPlus(other.to_string(), Decimal::new(c.units(), 3))
            } else {
                RhsSpec::Const(c)
            };
            AtomSpec {
                path: path.to_string(),
                op,
                rhs,
            }
        })
        .boxed()
}

/// A window spec; `diff` windows reference `det_time`, sizes and steps
/// are positive, and steps may exceed the size (sampling windows).
pub fn arb_window() -> BoxedStrategy<WindowChoice> {
    let count =
        (1i64..8, 1i64..10, any::<bool>()).prop_map(|(size, step, tumbling)| WindowChoice::Count {
            size: Decimal::from_int(size),
            step: (!tumbling).then(|| Decimal::from_int(step)),
        });
    let diff = (1i64..80, 1i64..100, any::<bool>()).prop_map(|(size, step, tumbling)| {
        WindowChoice::Diff {
            // Scale 1 keeps window boundaries off the data's scale-4 grid
            // often enough to exercise boundary comparisons.
            size: Decimal::new(size as i128, 1),
            step: (!tumbling).then(|| Decimal::new(step as i128, 1)),
        }
    });
    prop_oneof![count, diff].boxed()
}

fn arb_agg_op() -> BoxedStrategy<AggOp> {
    prop_oneof![
        Just(AggOp::Avg),
        Just(AggOp::Sum),
        Just(AggOp::Count),
        Just(AggOp::Min),
        Just(AggOp::Max),
    ]
}

fn arb_tag() -> BoxedStrategy<String> {
    prop_oneof![
        Just("out".to_string()),
        Just("hit".to_string()),
        Just("r".to_string()),
    ]
}

/// A complete random flat subscription, guaranteed to compile.
pub fn arb_query() -> BoxedStrategy<QuerySpec> {
    let selection = prop::collection::vec(arb_atom(), 0..=3);
    let kind = 0usize..4;
    (
        selection,
        prop::option::of(arb_window()),
        kind,
        arb_tag(),
        arb_agg_op(),
        arb_schema_path(),
        prop::collection::vec((arb_comp_op(), decimal_in(0, 3000, 3)), 0..=2),
        prop::collection::vec(arb_schema_path(), 1..=3),
        any::<bool>(),
    )
        .prop_filter_map(
            "query must compile (satisfiable predicates)",
            |(selection, window, kind, tag, op, element, filter, paths, rooted)| {
                let windowed = window.is_some();
                let (window, body) = match kind {
                    // Plain projection: no window allowed.
                    0 | 1 => (
                        None,
                        BodySpec::Project {
                            tag,
                            paths: paths.iter().map(|p| p.to_string()).collect(),
                        },
                    ),
                    // Aggregation: force a window if none was sampled.
                    2 => (
                        Some(window.unwrap_or(WindowChoice::Count {
                            size: Decimal::from_int(4),
                            step: None,
                        })),
                        BodySpec::Aggregate {
                            tag,
                            op,
                            element: element.to_string(),
                            filter: if windowed { filter } else { Vec::new() },
                        },
                    ),
                    _ => (
                        Some(window.unwrap_or(WindowChoice::Diff {
                            size: Decimal::from_int(20),
                            step: None,
                        })),
                        BodySpec::Window { tag },
                    ),
                };
                let spec = QuerySpec {
                    stream: "photons".to_string(),
                    stream_root: "photons".to_string(),
                    item: "photon".to_string(),
                    result_root: rooted.then(|| "photons".to_string()),
                    selection,
                    window,
                    body,
                };
                spec.compiles().then_some(spec)
            },
        )
        .boxed()
}

impl Arbitrary for QuerySpec {
    fn arbitrary() -> BoxedStrategy<QuerySpec> {
        arb_query()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_query;
    use proptest::test_runner::TestRng;

    #[test]
    fn sampled_queries_compile_and_round_trip() {
        let mut rng = TestRng::deterministic();
        let strat = arb_query();
        for _ in 0..200 {
            let spec = strat.sample(&mut rng);
            let text = spec.to_text();
            let ast = parse_query(&text).unwrap_or_else(|e| panic!("{text}: {e}"));
            assert_eq!(ast, spec.to_ast(), "display round trip changed {text}");
            assert!(spec.compiles(), "sampled query does not compile: {text}");
        }
    }

    #[test]
    fn shrink_candidates_compile_and_terminate() {
        let mut rng = TestRng::deterministic();
        let strat = arb_query();
        for _ in 0..50 {
            let spec = strat.sample(&mut rng);
            // Greedy shrinking must hit a fixpoint: every step strictly
            // reduces a finite measure.
            let mut cur = spec;
            for _ in 0..200 {
                let candidates = cur.shrink();
                for c in &candidates {
                    assert!(
                        c.compiles(),
                        "shrink produced non-compiling {}",
                        c.to_text()
                    );
                }
                match candidates.into_iter().next() {
                    Some(next) => cur = next,
                    None => break,
                }
            }
            assert!(cur.shrink().len() < 60);
        }
    }

    #[test]
    fn windowed_bodies_require_windows() {
        let mut rng = TestRng::deterministic();
        let strat = arb_query();
        for _ in 0..200 {
            let spec = strat.sample(&mut rng);
            match spec.body {
                BodySpec::Project { .. } => assert!(spec.window.is_none()),
                BodySpec::Aggregate { .. } | BodySpec::Window { .. } => {
                    assert!(spec.window.is_some())
                }
            }
        }
    }
}
