//! Pretty-printing (unparsing) of WXQuery ASTs.
//!
//! The printer produces text the parser accepts, and parsing its output
//! yields the original AST — a round-trip property checked by the
//! workspace's proptest suite. It is also used to echo normalized
//! subscriptions in logs and the CLI.

use std::fmt;

use dss_xml::Decimal;

use crate::ast::{
    Clause, Condition, Content, ElementCtor, Expr, Flwr, ForSource, PredAtom, PredTerm, VarPath,
    WindowAst,
};

impl fmt::Display for VarPath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "${}", self.var)?;
        if !self.path.is_empty() {
            write!(f, "/{}", self.path)?;
        }
        Ok(())
    }
}

impl fmt::Display for PredAtom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} ", self.lhs, self.op)?;
        match &self.rhs {
            PredTerm::Const(c) => write!(f, "{c}"),
            PredTerm::VarPlus(vp, c) => {
                write!(f, "{vp}")?;
                if *c > Decimal::ZERO {
                    write!(f, " + {c}")?;
                } else if *c < Decimal::ZERO {
                    write!(f, " - {}", -*c)?;
                }
                Ok(())
            }
        }
    }
}

/// Prints a conjunction with `and` separators. Bare-path conditions inside
/// `[p]` blocks keep their variable prefix when printed — the parser
/// accepts both spellings.
fn fmt_condition(cond: &Condition, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    for (i, atom) in cond.iter().enumerate() {
        if i > 0 {
            write!(f, " and ")?;
        }
        write!(f, "{atom}")?;
    }
    Ok(())
}

impl fmt::Display for WindowAst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WindowAst::Count { size, step } => {
                write!(f, "|count {size}")?;
                if let Some(s) = step {
                    write!(f, " step {s}")?;
                }
                write!(f, "|")
            }
            WindowAst::Diff {
                reference,
                size,
                step,
            } => {
                write!(f, "|{reference} diff {size}")?;
                if let Some(s) = step {
                    write!(f, " step {s}")?;
                }
                write!(f, "|")
            }
        }
    }
}

impl fmt::Display for ForSource {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ForSource::Stream(s) => write!(f, "stream(\"{s}\")"),
            ForSource::Doc(d) => write!(f, "doc(\"{d}\")"),
            ForSource::Var(v) => write!(f, "${v}"),
        }
    }
}

impl fmt::Display for Clause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Clause::For {
                var,
                source,
                path,
                conditions,
                window,
            } => {
                write!(f, "for ${var} in {source}")?;
                if !path.is_empty() {
                    write!(f, "/{path}")?;
                }
                if !conditions.is_empty() {
                    write!(f, "[")?;
                    fmt_condition(conditions, f)?;
                    write!(f, "]")?;
                }
                if let Some(w) = window {
                    write!(f, " {w}")?;
                }
                Ok(())
            }
            Clause::Let { var, op, source } => write!(f, "let ${var} := {op}({source})"),
        }
    }
}

impl fmt::Display for Flwr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for clause in &self.clauses {
            write!(f, "{clause} ")?;
        }
        if !self.where_.is_empty() {
            write!(f, "where ")?;
            fmt_condition(&self.where_, f)?;
            write!(f, " ")?;
        }
        write!(f, "return {}", self.ret)
    }
}

impl fmt::Display for ElementCtor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.content.is_empty() {
            return write!(f, "<{}/>", self.tag);
        }
        write!(f, "<{}>", self.tag)?;
        for c in &self.content {
            match c {
                Content::Element(e) => write!(f, "{e}")?,
                Content::Enclosed(e) => write!(f, "{{ {e} }}")?,
                Content::Text(t) => write!(f, "{t}")?,
            }
        }
        write!(f, "</{}>", self.tag)
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Element(e) => write!(f, "{e}"),
            Expr::Flwr(fl) => write!(f, "{fl}"),
            Expr::If { cond, then, els } => {
                write!(f, "if ")?;
                fmt_condition(cond, f)?;
                write!(f, " then {then} else {els}")
            }
            Expr::PathOutput(vp) => write!(f, "{vp}"),
            Expr::Sequence(items) => {
                write!(f, "(")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{item}")?;
                }
                write!(f, ")")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::parse::parse_query;
    use crate::queries;

    /// Parsing the printed form of each paper query reproduces the AST.
    #[test]
    fn paper_queries_round_trip_through_display() {
        for (name, text) in queries::ALL {
            let ast = parse_query(text).unwrap();
            let printed = ast.to_string();
            let reparsed = parse_query(&printed)
                .unwrap_or_else(|e| panic!("{name} printed form does not parse: {e}\n{printed}"));
            assert_eq!(
                ast, reparsed,
                "{name} round trip changed the AST:\n{printed}"
            );
        }
    }

    #[test]
    fn printed_queries_are_single_line_normal_forms() {
        let ast = parse_query(queries::Q4).unwrap();
        let printed = ast.to_string();
        assert!(printed.contains("|det_time diff 60 step 40|"));
        assert!(printed.contains("let $a := avg($w/en)"));
        assert!(printed.contains("where $a >= 1.3"));
    }
}
