//! Indexed plan search vs. the full-scan reference (PR 6).
//!
//! `subscribe_with` now resolves candidate streams through the per-peer
//! stream catalog (signature/window pre-filters, route memoization);
//! `subscribe_full_scan` is the pre-index reference that enumerates every
//! deployed flow at every visited peer. The two must be *observationally
//! identical*: same matches, same plans generated, same peers visited,
//! byte-identical winning plan — the index may only prune candidates that
//! `match_input_properties` would have rejected anyway ("prune, never
//! skip").
//!
//! Budget: `DSS_DIFF_CASES` (default 64) cases per property; CI runs 256.
//! `DSS_PROPTEST_SEED` picks the deterministic case stream.

use proptest::prelude::*;

use data_stream_sharing::core::{
    subscribe_full_scan, subscribe_with, SearchOrder, SearchStats, Strategy, StreamGlobe,
};
use data_stream_sharing::network::grid_topology;
use dss_rass::{default_photons, QueryTemplateGenerator, TemplateKind};
use dss_wxquery::compile_query;
use dss_wxquery::testing::arb_query;

fn diff_cases() -> u32 {
    std::env::var("DSS_DIFF_CASES")
        .ok()
        .and_then(|s| s.trim().parse().ok())
        .unwrap_or(64)
}

/// Builds a grid system with `n_queries` template subscriptions scattered
/// over the peers, optionally with widening on and a subset unregistered
/// again (exercising catalog de-indexing on retire).
fn build_system(
    dim: usize,
    seed: u64,
    n_queries: usize,
    widening: bool,
    unregister_every: usize,
) -> (StreamGlobe, QueryTemplateGenerator) {
    let mut system = StreamGlobe::new(grid_topology(dim, dim));
    system.set_widening(widening);
    system
        .register_stream("photons", "SP0", default_photons(seed, 120), 50.0)
        .expect("stream registration");
    let mut tgen = QueryTemplateGenerator::new(seed, "photons");
    let peers = dim * dim;
    for i in 0..n_queries {
        let text = tgen.next_query();
        let peer = format!("SP{}", (i * 7 + 3) % peers);
        // Some registrations may legitimately fail (e.g. infeasible
        // plans); the probe only needs whatever ended up deployed.
        let _ = system.register_query(format!("q{i}"), &text, &peer, Strategy::StreamSharing);
    }
    if unregister_every > 0 {
        for i in (0..n_queries).step_by(unregister_every) {
            let _ = system.unregister_query(&format!("q{i}"));
        }
    }
    (system, tgen)
}

/// Runs both searches for one probe query and asserts observational
/// equivalence. Returns the stats pair (indexed, full scan) for BFS when
/// both succeeded, so callers can additionally assert pruning.
fn assert_equivalent(
    system: &StreamGlobe,
    text: &str,
    v_q_name: &str,
    widening: bool,
) -> Option<(SearchStats, SearchStats)> {
    let Ok(compiled) = compile_query(text) else {
        return None;
    };
    let v_q = system.topology().expect_node(v_q_name);
    let mut bfs_stats = None;
    for order in [SearchOrder::Bfs, SearchOrder::Dfs] {
        let indexed = subscribe_with(system.state(), &compiled, v_q, v_q, order, false, widening);
        let full = subscribe_full_scan(system.state(), &compiled, v_q, v_q, order, false, widening);
        match (indexed, full) {
            (Ok((ip, is)), Ok((fp, fs))) => {
                assert_eq!(
                    is.nodes_visited, fs.nodes_visited,
                    "indexed search must visit the same peers ({order:?}, probe {text})"
                );
                assert_eq!(
                    is.matches, fs.matches,
                    "indexed search must find the same matches ({order:?}, probe {text})"
                );
                assert_eq!(
                    is.plans_generated, fs.plans_generated,
                    "indexed search must generate the same plans ({order:?}, probe {text})"
                );
                assert!(
                    is.candidates_matched <= fs.candidates_matched,
                    "index may only prune candidates: {} > {} ({order:?}, probe {text})",
                    is.candidates_matched,
                    fs.candidates_matched
                );
                assert_eq!(
                    format!("{ip:?}"),
                    format!("{fp:?}"),
                    "winning plan must be byte-identical ({order:?}, probe {text})"
                );
                if matches!(order, SearchOrder::Bfs) {
                    bfs_stats = Some((is, fs));
                }
            }
            (Err(a), Err(b)) => {
                assert_eq!(
                    format!("{a:?}"),
                    format!("{b:?}"),
                    "both searches must fail identically ({order:?}, probe {text})"
                );
            }
            (a, b) => panic!(
                "indexed and full-scan search disagree on success ({order:?}, probe {text}): \
                 indexed {:?} vs full {:?}",
                a.map(|(_, s)| s),
                b.map(|(_, s)| s)
            ),
        }
    }
    bfs_stats
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(diff_cases()))]

    /// Equivalence: for arbitrary deployments (grid size, template mix,
    /// widening on/off, retired subscriptions) and probes drawn from both
    /// the template generator and the unconstrained query strategy, the
    /// indexed search is observationally identical to the full scan.
    #[test]
    fn indexed_search_equals_full_scan(
        seed in 0u64..1_000_000,
        dim in 2usize..=4,
        n_queries in 0usize..14,
        widening in any::<bool>(),
        unregister_every in 0usize..4,
        probe_peer in 0usize..64,
        spec in arb_query(),
    ) {
        let (system, mut tgen) = build_system(dim, seed, n_queries, widening, unregister_every);
        let peers = dim * dim;
        let v_q = format!("SP{}", probe_peer % peers);
        // Template probes: one of each kind, hitting the pre-filters the
        // installed population was drawn from.
        for kind in [
            TemplateKind::Selection,
            TemplateKind::Projection,
            TemplateKind::Aggregation,
        ] {
            let text = tgen.next_query_of(kind);
            assert_equivalent(&system, &text, &v_q, widening);
        }
        // Unconstrained probe: arbitrary selections/projections/windows,
        // including shapes the templates never produce.
        assert_equivalent(&system, &spec.to_text(), &v_q, widening);
    }
}

/// Counts, per `subscribe_input` span, the recorded `visit` and
/// `candidate` events, plus how many candidate events carry an accepted
/// outcome (`initial`/`matched`/`widened` — the events pruning must never
/// remove).
fn traced_counts(
    system: &StreamGlobe,
    text: &str,
    v_q_name: &str,
    full_scan: bool,
) -> Vec<(usize, usize, usize)> {
    use dss_telemetry::Value;
    let compiled = compile_query(text).expect("probe compiles");
    let v_q = system.topology().expect_node(v_q_name);
    let session = dss_telemetry::session();
    let result = if full_scan {
        subscribe_full_scan(
            system.state(),
            &compiled,
            v_q,
            v_q,
            SearchOrder::Bfs,
            false,
            false,
        )
    } else {
        subscribe_with(
            system.state(),
            &compiled,
            v_q,
            v_q,
            SearchOrder::Bfs,
            false,
            false,
        )
    };
    result.expect("probe subscribes");
    let snap = session.snapshot();
    drop(session);
    snap.spans_named("subscribe_input")
        .map(|span| {
            let visits = span.children_named("visit").count();
            let candidates = span.children_named("candidate").count();
            let accepted = span
                .children_named("candidate")
                .filter(|c| {
                    matches!(
                        c.field("outcome"),
                        Some(Value::Str(s)) if s == "initial" || s == "matched" || s == "widened"
                    )
                })
                .count();
            (visits, candidates, accepted)
        })
        .collect()
}

/// Telemetry regression: with the index, the `subscribe_input` trace
/// records the same visits and the same accepted candidates as the full
/// scan, and strictly fewer candidate probes on a workload where the
/// signature pre-filter must fire (selection probe against a population
/// containing aggregation streams).
#[test]
fn telemetry_counts_prune_but_never_skip() {
    let mut system = StreamGlobe::new(grid_topology(4, 4));
    system
        .register_stream("photons", "SP0", default_photons(7, 160), 50.0)
        .expect("stream registration");
    let mut tgen = QueryTemplateGenerator::new(7, "photons");
    for i in 0..8 {
        let text = tgen.next_query_of(TemplateKind::Aggregation);
        system
            .register_query(
                format!("agg{i}"),
                &text,
                &format!("SP{}", (i * 5) % 16),
                Strategy::StreamSharing,
            )
            .expect("aggregation registration");
    }
    for i in 0..8 {
        let text = tgen.next_query_of(TemplateKind::Selection);
        system
            .register_query(
                format!("sel{i}"),
                &text,
                &format!("SP{}", (i * 3 + 1) % 16),
                Strategy::StreamSharing,
            )
            .expect("selection registration");
    }
    let probe = tgen.next_query_of(TemplateKind::Selection);
    let indexed = traced_counts(&system, &probe, "SP10", false);
    let full = traced_counts(&system, &probe, "SP10", true);
    assert_eq!(indexed.len(), full.len(), "same number of input searches");
    let mut any_pruned = false;
    for ((iv, ic, ia), (fv, fc, fa)) in indexed.iter().zip(full.iter()) {
        assert_eq!(iv, fv, "visit events must be unchanged by indexing");
        assert!(
            ic <= fc,
            "indexed candidate events must not exceed full scan"
        );
        assert_eq!(ia, fa, "accepted candidates must be unchanged by indexing");
        any_pruned |= ic < fc;
    }
    assert!(
        any_pruned,
        "selection probe against aggregation streams must prune candidates: \
         indexed {indexed:?} vs full {full:?}"
    );
}

/// E10 regression: over the scalability experiment's query mix, the
/// `nodes_visited` column is identical with and without the index — the
/// pre-filters prune candidate *streams*, never search *peers*.
#[test]
fn e10_nodes_visited_unchanged_by_indexing() {
    let seed = 20060329;
    let mut system = StreamGlobe::new(grid_topology(4, 4));
    system
        .register_stream("photons", "SP0", default_photons(seed, 160), 60.0)
        .expect("stream registration");
    let mut tgen = QueryTemplateGenerator::new(seed, "photons");
    for i in 0..24 {
        let text = tgen.next_query();
        let peer = format!("SP{}", (i * 11 + 2) % 16);
        if let Some((is, fs)) = assert_equivalent(&system, &text, &peer, false) {
            assert_eq!(is.nodes_visited, fs.nodes_visited);
        }
        let _ = system.register_query(format!("q{i}"), &text, &peer, Strategy::StreamSharing);
    }
}
