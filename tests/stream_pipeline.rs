//! Over-the-wire pipeline test: photons are serialized into a single
//! stream document, delivered in arbitrary chunks, parsed incrementally,
//! pushed through compiled query pipelines, and the results re-serialized —
//! exercising the full substrate stack the way the network simulator's
//! peers would.

use data_stream_sharing::engine::build_pipeline;
use data_stream_sharing::engine::StreamOperatorExt;
use data_stream_sharing::wxquery::{compile_query, queries};
use data_stream_sharing::xml::reader::StreamReader;
use data_stream_sharing::xml::writer::{node_to_string, stream_close, stream_open};
use data_stream_sharing::xml::Node;
use dss_rass::{GeneratorConfig, PhotonGenerator};

fn photon_items(n: usize) -> Vec<Node> {
    let cfg = GeneratorConfig {
        seed: 1717,
        mean_time_increment: 0.3,
        ..GeneratorConfig::default()
    };
    PhotonGenerator::new(cfg).generate_items(n)
}

fn as_wire_bytes(items: &[Node]) -> Vec<u8> {
    let mut doc = stream_open("photons");
    for item in items {
        doc.push_str(&node_to_string(item));
    }
    doc.push_str(&stream_close("photons"));
    doc.into_bytes()
}

/// Parses the wire bytes in `chunk`-sized pieces and runs each item through
/// the query's operator chain plus restructuring.
fn run_over_wire(query_text: &str, wire: &[u8], chunk: usize) -> Vec<String> {
    let compiled = compile_query(query_text).expect("query compiles");
    let mut pipeline = build_pipeline(compiled.operator_chain());
    let mut restructure = compiled.restructure_op();
    let mut reader = StreamReader::new();
    let mut results = Vec::new();
    let push = |item: &Node, results: &mut Vec<String>, pipeline: &mut _, restructure: &mut _| {
        let pipeline: &mut dss_engine::Pipeline = pipeline;
        let restructure: &mut dss_engine::RestructureOp = restructure;
        for transformed in pipeline.process(item) {
            for out in restructure.process_collect(&transformed) {
                results.push(node_to_string(&out));
            }
        }
    };
    for piece in wire.chunks(chunk) {
        reader.feed(piece);
        while let Some(item) = reader.next_item().expect("well-formed stream") {
            push(&item, &mut results, &mut pipeline, &mut restructure);
        }
    }
    for leftover in pipeline.flush() {
        for out in restructure.process_collect(&leftover) {
            results.push(node_to_string(&out));
        }
    }
    results
}

#[test]
fn q1_over_the_wire_matches_in_memory() {
    let items = photon_items(800);
    let wire = as_wire_bytes(&items);

    // In-memory reference run.
    let compiled = compile_query(queries::Q1).unwrap();
    let mut pipeline = build_pipeline(compiled.operator_chain());
    let mut restructure = compiled.restructure_op();
    let mut expected = Vec::new();
    for item in &items {
        for t in pipeline.process(item) {
            for out in restructure.process_collect(&t) {
                expected.push(node_to_string(&out));
            }
        }
    }

    for chunk in [7usize, 64, 1024, wire.len()] {
        let got = run_over_wire(queries::Q1, &wire, chunk);
        assert_eq!(got, expected, "chunk size {chunk} changed the results");
    }
    assert!(!expected.is_empty());
    assert!(expected[0].starts_with("<vela>"));
}

#[test]
fn q3_aggregation_over_the_wire() {
    let items = photon_items(1500);
    let wire = as_wire_bytes(&items);
    let results = run_over_wire(queries::Q3, &wire, 199);
    assert!(!results.is_empty(), "Q3 should emit window averages");
    for r in &results {
        assert!(r.starts_with("<avg_en>"), "unexpected result {r}");
        let v: f64 = r
            .trim_start_matches("<avg_en>")
            .trim_end_matches("</avg_en>")
            .parse()
            .expect("numeric average");
        assert!((0.0..10.0).contains(&v));
    }
}

#[test]
fn all_paper_queries_run_over_the_wire() {
    let items = photon_items(600);
    let wire = as_wire_bytes(&items);
    for (name, text) in queries::ALL {
        let results = run_over_wire(text, &wire, 333);
        assert!(!results.is_empty(), "{name} delivered nothing");
    }
}

#[test]
fn wire_results_parse_back_to_schema_compatible_items() {
    let items = photon_items(400);
    let wire = as_wire_bytes(&items);
    for r in run_over_wire(queries::Q2, &wire, 128) {
        let node = Node::parse(&r).expect("result items are well-formed XML");
        assert_eq!(node.name(), "rxj");
        assert!(node.child("ra").is_some());
        assert!(node.child("en").is_some());
    }
}
