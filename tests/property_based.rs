//! Property-based tests (proptest) over the core data structures and
//! invariants.

use proptest::prelude::*;

use data_stream_sharing::engine::{AggItem, AggregateOp, ReAggregateOp, StreamOperatorExt};
use data_stream_sharing::predicate::{match_predicates, Atom, Bound, CompOp, PredicateGraph};
use data_stream_sharing::properties::{AggOp, AggregationSpec, ResultFilter, WindowSpec};
use data_stream_sharing::xml::writer::{node_to_string, pretty, serialized_size};
use data_stream_sharing::xml::{Decimal, Node, Path};

// ---------- decimals ---------------------------------------------------

fn arb_decimal() -> impl Strategy<Value = Decimal> {
    (-1_000_000i64..1_000_000i64, 0u32..4)
        .prop_map(|(units, scale)| Decimal::new(units as i128, scale))
}

proptest! {
    #[test]
    fn decimal_display_parse_round_trip(v in arb_decimal()) {
        let back: Decimal = v.to_string().parse().unwrap();
        prop_assert_eq!(v, back);
    }

    #[test]
    fn decimal_addition_commutes(a in arb_decimal(), b in arb_decimal()) {
        prop_assert_eq!(a + b, b + a);
        prop_assert_eq!((a + b) - b, a);
    }

    #[test]
    fn decimal_ordering_consistent_with_f64(a in arb_decimal(), b in arb_decimal()) {
        if (a.to_f64() - b.to_f64()).abs() > 1e-6 {
            prop_assert_eq!(a < b, a.to_f64() < b.to_f64());
        }
    }
}

// ---------- bounds and predicate graphs --------------------------------

fn arb_bound() -> impl Strategy<Value = Bound> {
    (arb_decimal(), any::<bool>()).prop_map(|(w, strict)| Bound { weight: w, strict })
}

proptest! {
    /// Bound implication is sound: if b1 ⇒ b2 then every value satisfying
    /// b1 satisfies b2 (checked over sampled differences).
    #[test]
    fn bound_implication_sound(b1 in arb_bound(), b2 in arb_bound(), diff in arb_decimal()) {
        if b1.implies(b2) && b1.satisfied_by(diff, Decimal::ZERO) {
            prop_assert!(b2.satisfied_by(diff, Decimal::ZERO));
        }
    }

    /// Bound composition is sound: x−y ≤ b1 and y−z ≤ b2 implies
    /// x−z ≤ b1∘b2.
    #[test]
    fn bound_compose_sound(
        b1 in arb_bound(), b2 in arb_bound(),
        x in arb_decimal(), y in arb_decimal(), z in arb_decimal(),
    ) {
        if b1.satisfied_by(x, y) && b2.satisfied_by(y, z) {
            prop_assert!(b1.compose(b2).satisfied_by(x, z));
        }
    }
}

/// Small universe of variables for predicate-graph properties.
fn var(i: usize) -> Path {
    format!("v{i}").parse().unwrap()
}

fn arb_atom() -> impl Strategy<Value = Atom> {
    let op = prop_oneof![
        Just(CompOp::Le),
        Just(CompOp::Lt),
        Just(CompOp::Ge),
        Just(CompOp::Gt),
        Just(CompOp::Eq),
    ];
    let small = -20i64..20i64;
    prop_oneof![
        (0usize..3, op.clone(), small.clone()).prop_map(|(v, op, c)| Atom::var_const(
            var(v),
            op,
            Decimal::from_int(c)
        )),
        (0usize..3, op, 0usize..3, small)
            .prop_filter_map("distinct vars", |(v, op, w, c)| (v != w)
                .then(|| Atom::var_var(var(v), op, var(w), Decimal::from_int(c)))),
    ]
}

fn arb_conjunction(max: usize) -> impl Strategy<Value = Vec<Atom>> {
    prop::collection::vec(arb_atom(), 1..=max)
}

/// Brute-force model check over a small integer grid: does `assignment ⊨
/// atoms`?
fn satisfies(atoms: &[Atom], vals: &[i64; 3]) -> bool {
    let item = Node::elem(
        "item",
        (0..3)
            .map(|i| Node::leaf(format!("v{i}"), vals[i].to_string()))
            .collect(),
    );
    atoms.iter().all(|a| a.evaluate(&item))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Graph satisfiability is complete over the integer grid: if some
    /// grid assignment satisfies all atoms, the graph must be satisfiable.
    #[test]
    fn satisfiability_complete(atoms in arb_conjunction(4), a in -25i64..25, b in -25i64..25, c in -25i64..25) {
        let g = PredicateGraph::from_atoms(&atoms);
        if satisfies(&atoms, &[a, b, c]) {
            prop_assert!(g.is_satisfiable(), "witness {:?} exists but graph unsat: {atoms:?}", (a, b, c));
        }
    }

    /// Predicate evaluation agrees between the atom list and its graph.
    #[test]
    fn graph_evaluation_matches_atoms(atoms in arb_conjunction(4), a in -25i64..25, b in -25i64..25, c in -25i64..25) {
        let g = PredicateGraph::from_atoms(&atoms);
        let item = Node::elem(
            "item",
            (0..3).map(|i| Node::leaf(format!("v{i}"), [a, b, c][i].to_string())).collect(),
        );
        prop_assert_eq!(g.evaluate(&item), satisfies(&atoms, &[a, b, c]));
    }

    /// Minimization preserves semantics on the grid.
    #[test]
    fn minimize_preserves_semantics(atoms in arb_conjunction(4), a in -25i64..25, b in -25i64..25, c in -25i64..25) {
        let g = PredicateGraph::from_atoms(&atoms);
        let m = g.minimize();
        let item = Node::elem(
            "item",
            (0..3).map(|i| Node::leaf(format!("v{i}"), [a, b, c][i].to_string())).collect(),
        );
        prop_assert_eq!(g.evaluate(&item), m.evaluate(&item));
    }

    /// MatchPredicates soundness: if the subscription's predicates imply
    /// the stream's (match succeeds), then every item the subscription
    /// accepts is also in the stream.
    #[test]
    fn match_predicates_sound(
        stream_atoms in arb_conjunction(3),
        query_atoms in arb_conjunction(3),
        a in -25i64..25, b in -25i64..25, c in -25i64..25,
    ) {
        let g_stream = PredicateGraph::from_atoms(&stream_atoms);
        let g_query = PredicateGraph::from_atoms(&query_atoms);
        if match_predicates(&g_stream, &g_query) && satisfies(&query_atoms, &[a, b, c]) {
            prop_assert!(
                satisfies(&stream_atoms, &[a, b, c]),
                "item {:?} accepted by query but missing from stream", (a, b, c)
            );
        }
    }

    /// A predicate always matches itself (reflexivity of sharing).
    #[test]
    fn match_predicates_reflexive(atoms in arb_conjunction(4)) {
        let g = PredicateGraph::from_atoms(&atoms);
        if g.is_satisfiable() {
            prop_assert!(match_predicates(&g, &g));
        }
    }

    /// Hull soundness (the widening operation): every grid point satisfying
    /// either input predicate satisfies the hull.
    #[test]
    fn hull_contains_both_inputs(
        a_atoms in arb_conjunction(3),
        b_atoms in arb_conjunction(3),
        x in -25i64..25, y in -25i64..25, z in -25i64..25,
    ) {
        let ga = PredicateGraph::from_atoms(&a_atoms);
        let gb = PredicateGraph::from_atoms(&b_atoms);
        let hull = ga.hull(&gb);
        let item = Node::elem(
            "item",
            (0..3).map(|i| Node::leaf(format!("v{i}"), [x, y, z][i].to_string())).collect(),
        );
        if satisfies(&a_atoms, &[x, y, z]) || satisfies(&b_atoms, &[x, y, z]) {
            prop_assert!(
                hull.evaluate(&item),
                "point {:?} in an input region but outside the hull", (x, y, z)
            );
        }
    }
}

// ---------- XML round trips ---------------------------------------------

fn arb_name() -> impl Strategy<Value = String> {
    "[a-z][a-z0-9_]{0,6}".prop_map(|s| s)
}

fn arb_node() -> impl Strategy<Value = Node> {
    let leaf = (arb_name(), "[ -~]{0,12}").prop_map(|(n, t)| {
        // Avoid trailing/leading whitespace (normalized away by parsing)
        // and bare carriage returns.
        let t = t.trim().to_string();
        if t.is_empty() {
            Node::empty(n)
        } else {
            Node::leaf(n, t)
        }
    });
    leaf.prop_recursive(3, 24, 4, |inner| {
        (arb_name(), prop::collection::vec(inner, 0..4)).prop_map(|(n, children)| {
            if children.is_empty() {
                Node::empty(n)
            } else {
                Node::elem(n, children)
            }
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Serialize → parse is the identity.
    #[test]
    fn xml_round_trip(node in arb_node()) {
        let doc = node_to_string(&node);
        prop_assert_eq!(serialized_size(&node), doc.len());
        let back = Node::parse(&doc).unwrap();
        prop_assert_eq!(back, node);
    }

    /// Pretty-printing parses back to the same tree.
    #[test]
    fn xml_pretty_round_trip(node in arb_node()) {
        let back = Node::parse(&pretty(&node)).unwrap();
        prop_assert_eq!(back, node);
    }

    /// Chunked feeding produces identical items to whole-document feeding.
    #[test]
    fn xml_chunked_parse_equivalent(node in arb_node(), chunk in 1usize..16) {
        let doc = format!("<s>{}</s>", node_to_string(&node));
        let mut r = data_stream_sharing::xml::reader::StreamReader::new();
        let mut items = Vec::new();
        for piece in doc.as_bytes().chunks(chunk) {
            r.feed(piece);
            while let Some(item) = r.next_item().unwrap() {
                items.push(item);
            }
        }
        prop_assert_eq!(items.len(), 1);
        prop_assert_eq!(&items[0], &node);
    }
}

// ---------- WXQuery print/parse round trips -------------------------------

mod wxquery_roundtrip {
    use super::*;
    use data_stream_sharing::properties::AggOp;
    use data_stream_sharing::wxquery::ast::{
        Clause, Condition, Content, ElementCtor, Expr, Flwr, ForSource, PredAtom, PredTerm,
        VarPath, WindowAst,
    };
    use data_stream_sharing::wxquery::parse_query;

    fn arb_ident() -> impl Strategy<Value = String> {
        // Avoid WXQuery keywords by construction (always 'n'-prefixed).
        "n[a-z0-9_]{0,5}".prop_map(|s| s)
    }

    fn arb_path() -> impl Strategy<Value = Path> {
        prop::collection::vec(arb_ident(), 1..3).prop_map(|steps| Path::from_steps(steps).unwrap())
    }

    fn arb_small_decimal() -> impl Strategy<Value = Decimal> {
        (-999i64..999, 0u32..2).prop_map(|(u, s)| Decimal::new(u as i128, s))
    }

    fn arb_comp() -> impl Strategy<Value = CompOp> {
        prop_oneof![
            Just(CompOp::Eq),
            Just(CompOp::Lt),
            Just(CompOp::Le),
            Just(CompOp::Gt),
            Just(CompOp::Ge),
        ]
    }

    fn arb_atom(var: String) -> impl Strategy<Value = PredAtom> {
        let v1 = var.clone();
        let v2 = var.clone();
        let v3 = var;
        prop_oneof![
            (arb_path(), arb_comp(), arb_small_decimal()).prop_map(move |(p, op, c)| PredAtom {
                lhs: VarPath::new(v1.clone(), p),
                op,
                rhs: PredTerm::Const(c),
            }),
            (arb_path(), arb_comp(), arb_path(), arb_small_decimal()).prop_map(
                move |(p, op, q, c)| PredAtom {
                    lhs: VarPath::new(v2.clone(), p),
                    op,
                    rhs: PredTerm::VarPlus(VarPath::new(v3.clone(), q), c),
                }
            ),
        ]
    }

    fn arb_condition(var: String) -> impl Strategy<Value = Condition> {
        prop::collection::vec(arb_atom(var), 1..4)
    }

    fn arb_window() -> impl Strategy<Value = WindowAst> {
        let step = prop_oneof![
            Just(None),
            (1i64..100).prop_map(|s| Some(Decimal::from_int(s)))
        ];
        prop_oneof![
            ((1i64..100).prop_map(Decimal::from_int), step.clone())
                .prop_map(|(size, step)| WindowAst::Count { size, step }),
            (arb_path(), (1i64..100).prop_map(Decimal::from_int), step).prop_map(
                |(reference, size, step)| WindowAst::Diff {
                    reference,
                    size,
                    step
                }
            ),
        ]
    }

    fn arb_return(var: String, agg: Option<String>) -> impl Strategy<Value = Expr> {
        let mk_subtree = move || {
            let var = var.clone();
            arb_path()
                .prop_map(move |p| {
                    Content::Enclosed(Expr::PathOutput(VarPath::new(var.clone(), p)))
                })
                .boxed()
        };
        let agg_out = match agg {
            Some(a) => Just(Content::Enclosed(Expr::PathOutput(VarPath::new(
                a,
                Path::this(),
            ))))
            .boxed(),
            None => mk_subtree(),
        };
        (
            arb_ident(),
            prop::collection::vec(prop_oneof![mk_subtree(), agg_out], 0..4),
        )
            .prop_map(|(tag, content)| Expr::Element(ElementCtor { tag, content }))
    }

    /// A flat, compilable-shaped WXQuery AST (not necessarily semantically
    /// valid; round-tripping only needs syntax).
    fn arb_query() -> impl Strategy<Value = Expr> {
        (
            arb_ident(),                // result root
            arb_ident(),                // for var
            arb_ident(),                // stream name
            arb_path(),                 // stream path (>=1 step)
            prop::option::of(Just(())), // has window?
            prop::option::of(Just(())), // has let?
            any::<bool>(),              // has where?
            0usize..5,                  // agg op index
        )
            .prop_flat_map(
                |(root, var, stream, path, has_window, has_let, has_where, op_idx)| {
                    let ops = [AggOp::Min, AggOp::Max, AggOp::Sum, AggOp::Count, AggOp::Avg];
                    let agg_op = ops[op_idx % ops.len()];
                    let agg_var = has_let.map(|_| format!("{var}a"));
                    let window = has_window.map(|_| arb_window().boxed());
                    let cond = if has_where {
                        Some(arb_condition(var.clone()).boxed())
                    } else {
                        None
                    };
                    let bracket = prop::option::of(arb_condition(var.clone()));
                    let ret = arb_return(var.clone(), agg_var.clone());
                    (
                        Just(root),
                        Just(var),
                        Just(stream),
                        Just(path),
                        bracket,
                        window.map_or_else(|| Just(None).boxed(), |w| w.prop_map(Some).boxed()),
                        Just(agg_var),
                        Just(agg_op),
                        cond.map_or_else(|| Just(None).boxed(), |c| c.prop_map(Some).boxed()),
                        ret,
                    )
                },
            )
            .prop_map(
                |(root, var, stream, path, bracket, window, agg_var, agg_op, cond, ret)| {
                    let mut clauses = vec![Clause::For {
                        var: var.clone(),
                        source: ForSource::Stream(stream),
                        path,
                        conditions: bracket.unwrap_or_default(),
                        window,
                    }];
                    if let Some(a) = agg_var {
                        clauses.push(Clause::Let {
                            var: a,
                            op: agg_op,
                            source: VarPath::new(var, "nv".parse().unwrap()),
                        });
                    }
                    let flwr = Flwr {
                        clauses,
                        where_: cond.unwrap_or_default(),
                        ret: Box::new(ret),
                    };
                    Expr::Element(ElementCtor {
                        tag: root,
                        content: vec![Content::Enclosed(Expr::Flwr(flwr))],
                    })
                },
            )
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(192))]

        /// Printing any generated query and reparsing yields the same AST.
        #[test]
        fn print_parse_round_trip(ast in arb_query()) {
            let printed = ast.to_string();
            let reparsed = parse_query(&printed)
                .unwrap_or_else(|e| panic!("printed query does not parse: {e}\n{printed}"));
            prop_assert_eq!(ast, reparsed, "round trip changed the AST:\n{}", printed);
        }
    }
}

// ---------- window sharing ----------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// For any windows satisfying the paper's shareability conditions,
    /// re-aggregating the fine partials equals direct aggregation.
    #[test]
    fn window_sharing_equivalence(
        mu in 1u32..6,
        size_factor in 1u32..4,
        new_size_factor in 1u32..4,
        new_step_factor in 1u32..6,
        op_idx in 0usize..4,
        values in prop::collection::vec((0u32..400, 1u32..60), 20..120),
    ) {
        let mu = Decimal::from_int(mu as i64);
        let size = mu * size_factor as i64; // Δ = k·µ ⇒ Δ mod µ = 0
        let new_size = size * new_size_factor as i64; // Δ' mod Δ = 0
        let new_step = mu * new_step_factor as i64; // µ' mod µ = 0
        let op = [AggOp::Sum, AggOp::Count, AggOp::Min, AggOp::Max][op_idx];
        let fine = AggregationSpec {
            op,
            element: "v".parse::<Path>().unwrap(),
            window: WindowSpec::diff("t".parse().unwrap(), size, Some(mu)).unwrap(),
            pre_selection: PredicateGraph::new(),
            result_filter: ResultFilter::none(),
        };
        let coarse = AggregationSpec {
            window: WindowSpec::diff("t".parse().unwrap(), new_size, Some(new_step)).unwrap(),
            ..fine.clone()
        };
        prop_assume!(coarse.window.shareable_from(&fine.window));

        // Sorted reference values (the stream must be ordered by t).
        let mut ts: Vec<u32> = values.iter().map(|(t, _)| *t).collect();
        ts.sort_unstable();
        let items: Vec<Node> = ts
            .iter()
            .zip(values.iter().map(|(_, v)| *v))
            .map(|(t, v)| Node::elem("i", vec![
                Node::leaf("t", t.to_string()),
                Node::leaf("v", v.to_string()),
            ]))
            .collect();

        let mut direct_op = AggregateOp::new(coarse.clone());
        let mut fine_op = AggregateOp::new(fine.clone());
        let mut re_op = ReAggregateOp::new(fine, coarse);
        let mut direct = Vec::new();
        let mut shared = Vec::new();
        for item in &items {
            direct.extend(direct_op.process_collect(item));
            for partial in fine_op.process_collect(item) {
                shared.extend(re_op.process_collect(&partial));
            }
        }
        direct.extend(direct_op.flush_collect());
        for partial in fine_op.flush_collect() {
            shared.extend(re_op.process_collect(&partial));
        }
        shared.extend(re_op.flush_collect());
        prop_assert_eq!(direct, shared);
    }

    /// Re-windowing (window-contents sharing) equals direct windowing for
    /// any shareable window pair.
    #[test]
    fn rewindow_equivalence(
        mu in 1u32..5,
        size_factor in 1u32..4,
        new_size_factor in 1u32..4,
        new_step_factor in 1u32..5,
        ts in prop::collection::vec(0u32..300, 10..80),
    ) {
        use data_stream_sharing::engine::{ReWindowOp, WindowContentsOp};
        use data_stream_sharing::properties::WindowOutputSpec;
        let mu = Decimal::from_int(mu as i64);
        let size = mu * size_factor as i64;
        let new_size = size * new_size_factor as i64;
        let new_step = mu * new_step_factor as i64;
        let fine = WindowOutputSpec {
            window: WindowSpec::diff("t".parse::<Path>().unwrap(), size, Some(mu)).unwrap(),
            pre_selection: PredicateGraph::new(),
        };
        let coarse = WindowOutputSpec {
            window: WindowSpec::diff("t".parse::<Path>().unwrap(), new_size, Some(new_step))
                .unwrap(),
            pre_selection: PredicateGraph::new(),
        };
        prop_assume!(coarse.window.shareable_from(&fine.window));
        let mut sorted = ts.clone();
        sorted.sort_unstable();
        let items: Vec<Node> = sorted
            .iter()
            .map(|t| Node::elem("i", vec![Node::leaf("t", t.to_string())]))
            .collect();
        let mut direct_op = WindowContentsOp::new(coarse.clone());
        let mut fine_op = WindowContentsOp::new(fine.clone());
        let mut re_op = ReWindowOp::new(fine, coarse);
        let mut direct = Vec::new();
        let mut shared = Vec::new();
        for item in &items {
            direct.extend(direct_op.process_collect(item));
            for tile in fine_op.process_collect(item) {
                shared.extend(re_op.process_collect(&tile));
            }
        }
        direct.extend(direct_op.flush_collect());
        for tile in fine_op.flush_collect() {
            shared.extend(re_op.process_collect(&tile));
        }
        shared.extend(re_op.flush_collect());
        prop_assert_eq!(direct, shared);
    }

    /// Merging any split of a value sequence equals aggregating it whole.
    #[test]
    fn agg_item_merge_associative(values in prop::collection::vec(-500i64..500, 1..40), split in 0usize..40) {
        let split = split.min(values.len());
        let d = |v: i64| Decimal::from_int(v);
        let mut whole = AggItem::empty(Decimal::ZERO, d(10));
        for &v in &values {
            whole.add_value(d(v));
        }
        let mut left = AggItem::empty(Decimal::ZERO, d(5));
        let mut right = AggItem::empty(d(5), d(5));
        for &v in &values[..split] {
            left.add_value(d(v));
        }
        for &v in &values[split..] {
            right.add_value(d(v));
        }
        let mut merged = AggItem::empty(Decimal::ZERO, d(10));
        merged.merge(&left);
        merged.merge(&right);
        prop_assert_eq!(merged.count, whole.count);
        prop_assert_eq!(merged.sum, whole.sum);
        prop_assert_eq!(merged.min, whole.min);
        prop_assert_eq!(merged.max, whole.max);
    }
}
