//! Integration tests for the networked deployment mode (`dss serve`).
//!
//! Each test spawns a real loopback fleet — one OS process per super-peer
//! of the Figure-2 example topology, speaking the binary wire protocol
//! over TCP — and drives it with the client library. The batch simulator
//! (`StreamGlobe::run_simulation`) is the oracle throughout: the deployed
//! fleet must reproduce its per-query delivered outputs *byte for byte*.

use std::collections::BTreeMap;
use std::net::TcpListener;
use std::path::Path;
use std::time::Duration;

use data_stream_sharing::core::{Strategy, StreamGlobe};
use data_stream_sharing::server::{Client, ClientEvent, LocalCluster, ServeSpec};
use data_stream_sharing::xml::writer::node_to_string;
use dss_proto::WireStrategy;
use dss_wxquery::queries;

const FLEET_TIMEOUT: Duration = Duration::from_secs(60);
const RUN_TIMEOUT: Duration = Duration::from_secs(300);

/// The paper's four example queries, subscribed at their Figure-2 peers.
const SUBS: [(&str, &str); 4] = [("q1", "P1"), ("q2", "P2"), ("q3", "P3"), ("q4", "P4")];

fn query_text(id: &str) -> &'static str {
    match id {
        "q1" => queries::Q1,
        "q2" => queries::Q2,
        "q3" => queries::Q3,
        "q4" => queries::Q4,
        other => panic!("unknown query {other}"),
    }
}

/// Picks a port range where all `n` consecutive ports currently bind.
fn pick_port_base(n: u16) -> u16 {
    let seed = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .unwrap()
        .subsec_nanos() as u64;
    for attempt in 0..200u64 {
        let base = 20000 + ((seed.wrapping_add(attempt.wrapping_mul(977)) % 40000) as u16);
        let probes: Vec<_> = (0..n)
            .map(|i| TcpListener::bind(("127.0.0.1", base + i)))
            .collect();
        if probes.iter().all(Result::is_ok) {
            return base;
        }
    }
    panic!("no free 8-port range on loopback");
}

fn spawn_example_fleet(metrics_dir: Option<&Path>) -> (LocalCluster, ServeSpec) {
    let mut spec = ServeSpec::new("example").unwrap();
    spec.port_base = pick_port_base(8);
    let cluster = LocalCluster::spawn(Path::new(env!("CARGO_BIN_EXE_dss")), &spec, metrics_dir)
        .expect("fleet spawns");
    (cluster, spec)
}

/// In-process oracle: same registrations on the same base system, run
/// through the batch simulator. Returns each query's delivered items
/// (serialized) plus its registration metadata for plan comparison.
struct Oracle {
    results: BTreeMap<String, Vec<String>>,
    reused: BTreeMap<String, bool>,
    plans: BTreeMap<String, String>,
    costs: BTreeMap<String, f64>,
}

fn oracle(subs: &[(&str, &str)]) -> Oracle {
    let mut sys: StreamGlobe = dss_rass::scenario::example_network();
    let mut regs = Vec::new();
    for &(id, peer) in subs {
        let reg = sys
            .register_query(id, query_text(id), peer, Strategy::StreamSharing)
            .unwrap_or_else(|e| panic!("oracle registration of {id} failed: {e}"));
        let plan = reg.plan.describe(sys.state());
        regs.push((id.to_string(), reg, plan));
    }
    let sim = sys.run_simulation(Default::default());
    let mut o = Oracle {
        results: BTreeMap::new(),
        reused: BTreeMap::new(),
        plans: BTreeMap::new(),
        costs: BTreeMap::new(),
    };
    for (id, reg, plan) in regs {
        o.results.insert(
            id.clone(),
            sim.flow_outputs[reg.delivery_flow]
                .iter()
                .map(node_to_string)
                .collect(),
        );
        o.reused.insert(id.clone(), reg.reused_derived_stream);
        o.plans.insert(id.clone(), plan);
        o.costs.insert(id, reg.plan.total_cost);
    }
    o
}

/// The acceptance gate: a loopback Figure-2 deployment answers all four
/// paper queries with exactly the bytes the batch simulator delivers, and
/// a telemetry snapshot pulled from a *live* peer conforms to
/// `schemas/trace.schema.json`.
#[test]
fn loopback_figure2_is_byte_exact_against_the_simulator() {
    let expect = oracle(&SUBS);
    let (cluster, _spec) = spawn_example_fleet(None);
    let mut client =
        Client::connect(cluster.coordinator_addr(), "tester", FLEET_TIMEOUT).expect("connects");

    for &(id, peer) in &SUBS {
        let reply = client
            .subscribe(id, query_text(id), peer, WireStrategy::StreamSharing)
            .unwrap_or_else(|e| panic!("subscribing {id} failed: {e}"));
        // The replicated planner must make the oracle's sharing decisions.
        assert_eq!(
            reply.reused, expect.reused[id],
            "{id}: sharing decision diverged from the in-process planner"
        );
        assert_eq!(
            reply.plan, expect.plans[id],
            "{id}: plan diverged from the in-process planner"
        );
        assert_eq!(reply.cost, expect.costs[id], "{id}: plan cost diverged");
    }

    let out = client.run_and_collect(RUN_TIMEOUT).expect("run completes");
    let total: usize = expect.results.values().map(Vec::len).sum();
    assert_eq!(out.delivered as usize, total, "fleet-wide delivered count");
    for (id, want) in &expect.results {
        assert!(!want.is_empty(), "oracle delivers nothing for {id}");
        let got: Vec<String> = out
            .results
            .get(id)
            .unwrap_or_else(|| panic!("no deliveries for {id}"))
            .iter()
            .map(node_to_string)
            .collect();
        assert_eq!(
            &got, want,
            "{id}: delivered bytes differ from the simulator"
        );
    }

    // Telemetry from the live coordinator validates against the schema
    // and shows data-plane activity.
    let snapshot = client.metrics().expect("metrics pull");
    let doc = dss_telemetry::json::parse(&snapshot).expect("snapshot parses as JSON");
    let schema_text = std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/schemas/trace.schema.json"
    ))
    .expect("schema file");
    let schema = dss_telemetry::json::parse(&schema_text).expect("schema parses");
    let violations = dss_telemetry::schema::validate(&doc, &schema);
    assert!(
        violations.is_empty(),
        "live snapshot violates the schema: {violations:?}"
    );
    assert!(
        snapshot.contains("runtime.delivered"),
        "live snapshot should account deliveries"
    );

    client.goodbye();
    cluster.shutdown(FLEET_TIMEOUT).expect("clean shutdown");
}

/// Two clients with overlapping queries: the fleet's sharing decisions
/// (reuse flags, plans, costs) match `register_query` in-process, and both
/// subscribers receive their own byte-exact results from one run.
#[test]
fn concurrent_clients_share_streams_like_in_process_registration() {
    let expect = oracle(&SUBS[..2]);
    assert!(
        expect.reused["q2"],
        "oracle sanity: q2 reuses q1's stream in-process"
    );
    let (cluster, _spec) = spawn_example_fleet(None);
    let mut alice =
        Client::connect(cluster.coordinator_addr(), "alice", FLEET_TIMEOUT).expect("connects");
    let mut bob =
        Client::connect(cluster.coordinator_addr(), "bob", FLEET_TIMEOUT).expect("connects");

    let r1 = alice
        .subscribe("q1", query_text("q1"), "P1", WireStrategy::StreamSharing)
        .expect("q1 subscribes");
    let r2 = bob
        .subscribe("q2", query_text("q2"), "P2", WireStrategy::StreamSharing)
        .expect("q2 subscribes");
    assert!(!r1.reused, "q1 arrives first, nothing to share");
    assert!(r2.reused, "q2 must reuse q1's stream, as in-process");
    for (id, reply) in [("q1", &r1), ("q2", &r2)] {
        assert_eq!(reply.plan, expect.plans[id], "{id}: plan diverged");
        assert_eq!(reply.cost, expect.costs[id], "{id}: cost diverged");
    }

    // A duplicate id is refused with a typed fault, not a crash.
    let dup = bob.subscribe("q1", query_text("q1"), "P1", WireStrategy::StreamSharing);
    assert!(
        matches!(
            dup,
            Err(data_stream_sharing::server::ServerError::Fault { .. })
        ),
        "duplicate subscription must fault"
    );

    // Alice requests the run; each client receives its own query's stream.
    alice.start_run().expect("run starts");
    let bob_results = bob.wait_eos(&["q2"], RUN_TIMEOUT).expect("bob's stream");
    let alice_results = alice
        .wait_eos(&["q1"], RUN_TIMEOUT)
        .expect("alice's stream");
    for (id, results) in [("q1", &alice_results), ("q2", &bob_results)] {
        let got: Vec<String> = results[id].iter().map(node_to_string).collect();
        assert_eq!(&got, &expect.results[id], "{id}: bytes differ");
    }

    alice.goodbye();
    bob.goodbye();
    cluster.shutdown(FLEET_TIMEOUT).expect("clean shutdown");
}

/// Clean shutdown during an active run loses nothing: the run drains
/// fully (every item + end-of-stream delivered, byte-exact) before the
/// fleet stops, and every process flushes a final metrics snapshot.
#[test]
fn shutdown_mid_run_drains_without_losing_deliveries() {
    let expect = oracle(&SUBS[..1]);
    let metrics_dir =
        std::env::temp_dir().join(format!("dss-shutdown-test-{}", std::process::id()));
    std::fs::create_dir_all(&metrics_dir).unwrap();
    let (cluster, _spec) = spawn_example_fleet(Some(&metrics_dir));
    let mut subscriber =
        Client::connect(cluster.coordinator_addr(), "subscriber", FLEET_TIMEOUT).expect("connects");
    let mut admin =
        Client::connect(cluster.coordinator_addr(), "admin", FLEET_TIMEOUT).expect("connects");

    subscriber
        .subscribe("q1", query_text("q1"), "P1", WireStrategy::StreamSharing)
        .expect("subscribes");
    subscriber.start_run().expect("run starts");

    // Wait until the run is demonstrably in flight (first delivery seen),
    // then ask for shutdown *while items are still streaming*.
    let first = subscriber.next_event(RUN_TIMEOUT).expect("first delivery");
    let mut collected: Vec<String> = Vec::new();
    let mut eos_seen = false;
    if let ClientEvent::Deliver { items, eos, .. } = first {
        collected.extend(items.iter().map(node_to_string));
        eos_seen = eos;
    }
    admin.shutdown_fleet(RUN_TIMEOUT).expect("shutdown acked");

    // Everything the oracle delivers still arrives, in order, then EOS.
    while !eos_seen {
        match subscriber
            .next_event(RUN_TIMEOUT)
            .expect("stream continues")
        {
            ClientEvent::Deliver { items, eos, .. } => {
                collected.extend(items.iter().map(node_to_string));
                eos_seen = eos;
            }
            ClientEvent::RunDone { .. } => break,
        }
    }
    assert_eq!(
        collected, expect.results["q1"],
        "shutdown dropped or reordered deliveries"
    );

    cluster.wait(FLEET_TIMEOUT).expect("children exit cleanly");
    // Every peer process flushed its final snapshot on the way down.
    for i in 0..8 {
        let path = metrics_dir.join(format!("metrics-SP{i}.json"));
        let text = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("missing final snapshot {path:?}: {e}"));
        dss_telemetry::json::parse(&text)
            .unwrap_or_else(|e| panic!("snapshot {path:?} is not valid JSON: {e:?}"));
    }
    std::fs::remove_dir_all(&metrics_dir).ok();
}
