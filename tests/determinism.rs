//! Whole-system determinism: identical inputs must yield identical plans,
//! deployments, and measurements — run to run and irrespective of hidden
//! iteration orders. The planner's tie-breaking, the template generator,
//! and the simulator are all supposed to be fully deterministic; this
//! catches regressions (e.g. an accidental `HashMap` iteration dependency).

use data_stream_sharing::core::Strategy;
use data_stream_sharing::network::SimConfig;
use dss_rass::Scenario;

fn run_fingerprint(seed: u64) -> String {
    use std::hash::{DefaultHasher, Hash, Hasher};
    let scenario = Scenario::scenario1(seed);
    let outcome = scenario.run(Strategy::StreamSharing, false);
    assert!(outcome.errored.is_empty());
    let sim = outcome.simulate(SimConfig::default());
    let mut fp = String::new();
    for (i, flow) in outcome.system.deployment().flows().iter().enumerate() {
        // Hash the full serialized output so any divergence in operator
        // choice or item content shows, not just count/byte-sum changes.
        let mut h = DefaultHasher::new();
        for item in &sim.flow_outputs[i] {
            data_stream_sharing::xml::writer::node_to_string(item).hash(&mut h);
        }
        fp.push_str(&format!(
            "{i}:{}:{:?}:{}ops:{:016x}\n",
            flow.label,
            flow.route,
            flow.ops.len(),
            h.finish(),
        ));
    }
    fp.push_str(&format!("edges:{:?}\n", sim.metrics.edge_bytes));
    fp
}

#[test]
fn scenario_runs_are_reproducible() {
    let a = run_fingerprint(42);
    let b = run_fingerprint(42);
    assert_eq!(a, b, "two identical runs diverged");
    let c = run_fingerprint(43);
    assert_ne!(a, c, "different seeds should differ");
}

fn live_fingerprint(seed: u64) -> String {
    use data_stream_sharing::network::runtime::{FaultScript, LiveConfig};
    let scenario = Scenario::scenario1(seed);
    let mut outcome = scenario.run(Strategy::StreamSharing, false);
    assert!(outcome.errored.is_empty());
    let sp5 = scenario.topology.expect_node("SP5");
    let cfg = LiveConfig {
        duration_s: 4.0,
        trace: true,
        ..Default::default()
    };
    let live = outcome
        .run_live(cfg, &FaultScript::new().crash_peer(1.5, sp5))
        .expect("live run succeeds");
    let mut fp = live.trace.join("\n");
    fp.push_str(&format!("\nmetrics:{:?}\n", live.metrics));
    for flow in outcome.system.deployment().flows() {
        fp.push_str(&format!(
            "{}:{:?}:{}\n",
            flow.label, flow.route, flow.retired
        ));
    }
    fp
}

#[test]
fn live_runs_with_faults_are_reproducible() {
    // Same seed and fault script ⇒ byte-identical event traces, metrics,
    // and post-failover deployments. The live runtime's heap ordering,
    // failover re-planning, and metric folds must all be deterministic.
    let a = live_fingerprint(42);
    let b = live_fingerprint(42);
    assert_eq!(a, b, "two identical live runs diverged");
    let c = live_fingerprint(43);
    assert_ne!(a, c, "different seeds should differ");
}

#[test]
fn estimates_track_measured_sizes() {
    // The cost model's projected_size must be a sane predictor of the
    // projection operator's actual output sizes (the paper's size(p)
    // estimate drives plan choice).
    use data_stream_sharing::core::StreamStats;
    use data_stream_sharing::engine::ProjectOp;
    use data_stream_sharing::properties::ProjectionSpec;
    use data_stream_sharing::xml::writer::serialized_size;
    use data_stream_sharing::xml::Path;

    let items = dss_rass::default_photons(5, 500);
    let stats = StreamStats::from_sample(&items, 100.0);
    let cases: Vec<Vec<&str>> = vec![
        vec!["en"],
        vec!["en", "det_time"],
        vec!["coord/cel/ra", "coord/cel/dec", "en"],
        vec!["coord"],
        vec!["phc", "coord", "en", "det_time"],
    ];
    for paths in cases {
        let spec = ProjectionSpec::returning(
            paths
                .iter()
                .map(|p| p.parse::<Path>().unwrap())
                .collect::<Vec<_>>(),
        );
        let estimated = stats.projected_size(&spec.output);
        let measured: f64 = items
            .iter()
            .map(|i| serialized_size(&ProjectOp::project(&spec, i)) as f64)
            .sum::<f64>()
            / items.len() as f64;
        let ratio = estimated / measured;
        assert!(
            (0.8..1.25).contains(&ratio),
            "projection {paths:?}: estimated {estimated:.1} vs measured {measured:.1} \
             (ratio {ratio:.3})"
        );
    }
}

#[test]
fn selectivity_estimates_track_measured_rates() {
    use data_stream_sharing::core::StreamStats;
    use data_stream_sharing::predicate::{Atom, CompOp, PredicateGraph};
    use data_stream_sharing::xml::{Decimal, Path};

    let items = dss_rass::default_photons(11, 2_000);
    let stats = StreamStats::from_sample(&items, 100.0);
    let p = |s: &str| s.parse::<Path>().unwrap();
    let d = |s: &str| s.parse::<Decimal>().unwrap();
    // The Vela region predicate: photons cluster there, so the uniform
    // assumption *underestimates*; allow a wide band but require the same
    // order of magnitude.
    let vela = PredicateGraph::from_atoms(&[
        Atom::var_const(p("coord/cel/ra"), CompOp::Ge, d("120.0")),
        Atom::var_const(p("coord/cel/ra"), CompOp::Le, d("138.0")),
        Atom::var_const(p("coord/cel/dec"), CompOp::Ge, d("-49.0")),
        Atom::var_const(p("coord/cel/dec"), CompOp::Le, d("-40.0")),
    ]);
    let estimated = stats.selectivity(&vela);
    let measured = items.iter().filter(|i| vela.evaluate(i)).count() as f64 / items.len() as f64;
    assert!(
        estimated > measured / 20.0 && estimated < measured * 20.0,
        "vela: estimated {estimated:.4} vs measured {measured:.4}"
    );
    // A plain energy cut: energies are a mixture (background + two source
    // spectra), so the uniform-range model overestimates somewhat — it must
    // still land in the right ballpark.
    let encut = PredicateGraph::from_atoms(&[Atom::var_const(p("en"), CompOp::Ge, d("1.5"))]);
    let estimated = stats.selectivity(&encut);
    let measured = items.iter().filter(|i| encut.evaluate(i)).count() as f64 / items.len() as f64;
    assert!(
        (estimated - measured).abs() < 0.25,
        "en cut: estimated {estimated:.4} vs measured {measured:.4}"
    );
}
