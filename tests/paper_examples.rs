//! End-to-end integration tests over the paper's running example: the four
//! queries of Sections 1–2 on the Figure-1/2 network.

use data_stream_sharing::core::{Strategy, StreamGlobe};
use data_stream_sharing::network::{FlowOp, SimConfig};
use data_stream_sharing::wxquery::queries;
use dss_rass::scenario::example_network;

fn register_all(system: &mut StreamGlobe, strategy: Strategy) -> Vec<dss_core::Registration> {
    [
        ("Q1", queries::Q1, "P1"),
        ("Q2", queries::Q2, "P2"),
        ("Q3", queries::Q3, "P3"),
        ("Q4", queries::Q4, "P4"),
    ]
    .into_iter()
    .map(|(id, text, peer)| {
        system
            .register_query(id, text, peer, strategy)
            .unwrap_or_else(|e| panic!("{id}: {e}"))
    })
    .collect()
}

/// The narrative of Section 1, Figure 2: Query 1 is computed at SP4 and
/// routed to P1 via SP5 and SP1; Query 2 reuses the stream at SP5 and is
/// routed to P2 via SP7.
#[test]
fn figure2_plan_shapes() {
    let mut system = example_network();
    let regs = register_all(&mut system, Strategy::StreamSharing);
    let topo = system.topology();
    let name = |id: usize| topo.peer(id).name.clone();

    // Q1: operators pushed to SP4; result stream SP4 → SP0 → SP5 → SP1.
    let q1 = &regs[0].plan.parts[0];
    assert_eq!(name(q1.tap_node), "SP4");
    assert_eq!(
        q1.route.iter().map(|&n| name(n)).collect::<Vec<_>>(),
        ["SP4", "SP0", "SP5", "SP1"]
    );

    // Q2: duplicates Q1's stream at SP5, further filters, routes to SP7.
    let q2 = &regs[1].plan.parts[0];
    assert!(regs[1].reused_derived_stream);
    assert_eq!(name(q2.tap_node), "SP5");
    assert_eq!(*q2.route.last().unwrap(), topo.expect_node("SP7"));

    // Q4 reuses Q3's aggregate stream through a re-aggregation operator.
    let q4 = &regs[3].plan.parts[0];
    assert!(regs[3].reused_derived_stream);
    assert!(q4
        .ops
        .iter()
        .any(|op| matches!(op, FlowOp::ReAggregate { .. })));
}

/// Delivered results are byte-identical across strategies: sharing is an
/// optimization, not a semantics change.
#[test]
fn results_identical_across_strategies() {
    let collect = |strategy: Strategy| {
        let mut system = example_network();
        let regs = register_all(&mut system, strategy);
        let sim = system.run_simulation(SimConfig::default());
        regs.iter()
            .map(|r| sim.flow_outputs[r.delivery_flow].clone())
            .collect::<Vec<_>>()
    };
    let baseline = collect(Strategy::DataShipping);
    for strategy in [Strategy::QueryShipping, Strategy::StreamSharing] {
        let got = collect(strategy);
        for (i, (b, g)) in baseline.iter().zip(&got).enumerate() {
            assert_eq!(b, g, "query {} differs under {strategy}", i + 1);
        }
    }
    // And the queries actually produce data.
    for (i, results) in baseline.iter().enumerate() {
        assert!(!results.is_empty(), "query {} delivered nothing", i + 1);
    }
}

/// Query 2's results are contained in Query 1's (the containment that makes
/// sharing possible): every rxj photon position also appears in some vela
/// result item.
#[test]
fn q2_results_contained_in_q1() {
    let mut system = example_network();
    let regs = register_all(&mut system, Strategy::StreamSharing);
    let sim = system.run_simulation(SimConfig::default());
    let q1_items = &sim.flow_outputs[regs[0].delivery_flow];
    let q2_items = &sim.flow_outputs[regs[1].delivery_flow];
    assert!(!q2_items.is_empty());
    let q1_keys: std::collections::BTreeSet<(String, String)> = q1_items
        .iter()
        .map(|n| {
            (
                n.child("ra").unwrap().text().unwrap().to_string(),
                n.child("det_time").unwrap().text().unwrap().to_string(),
            )
        })
        .collect();
    for item in q2_items {
        let key = (
            item.child("ra").unwrap().text().unwrap().to_string(),
            item.child("det_time").unwrap().text().unwrap().to_string(),
        );
        assert!(
            q1_keys.contains(&key),
            "rxj item {key:?} not in vela results"
        );
    }
}

/// Every Q2 result satisfies Q2's predicate (selection correctness through
/// the shared path).
#[test]
fn q2_results_satisfy_predicate() {
    let mut system = example_network();
    let regs = register_all(&mut system, Strategy::StreamSharing);
    let sim = system.run_simulation(SimConfig::default());
    for item in &sim.flow_outputs[regs[1].delivery_flow] {
        let ra: f64 = item.child("ra").unwrap().text().unwrap().parse().unwrap();
        let en: f64 = item.child("en").unwrap().text().unwrap().parse().unwrap();
        assert!(
            (130.5..=135.5).contains(&ra),
            "ra {ra} outside RX J0852.0-4622"
        );
        assert!(en >= 1.3, "en {en} below the cut");
    }
}

/// Q4's filtered averages all satisfy `$a >= 1.3` and parse as decimals.
#[test]
fn q4_results_respect_filter() {
    let mut system = example_network();
    let regs = register_all(&mut system, Strategy::StreamSharing);
    let sim = system.run_simulation(SimConfig::default());
    let q4_items = &sim.flow_outputs[regs[3].delivery_flow];
    assert!(!q4_items.is_empty(), "Q4 should deliver filtered averages");
    for item in q4_items {
        assert_eq!(item.name(), "avg_en");
        let v: f64 = item.text().unwrap().parse().unwrap();
        assert!(v >= 1.3, "avg {v} violates the filter");
    }
}

/// Registering the same four queries under stream sharing transmits fewer
/// bytes than both baselines (Figures 1 vs. 2).
#[test]
fn sharing_reduces_total_traffic() {
    let totals: Vec<u64> = Strategy::ALL
        .into_iter()
        .map(|strategy| {
            let mut system = example_network();
            register_all(&mut system, strategy);
            system
                .run_simulation(SimConfig::default())
                .metrics
                .total_edge_bytes()
        })
        .collect();
    assert!(
        totals[0] > totals[1],
        "data shipping {} ≤ query shipping {}",
        totals[0],
        totals[1]
    );
    assert!(
        totals[1] > totals[2],
        "query shipping {} ≤ stream sharing {}",
        totals[1],
        totals[2]
    );
}
