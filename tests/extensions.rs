//! Integration tests for the implemented paper extensions, exercised
//! through the public API: window-contents sharing, stream widening, and
//! subscription unregistration.

use data_stream_sharing::core::{Strategy, SystemError};
use data_stream_sharing::network::SimConfig;
use data_stream_sharing::wxquery::queries;
use dss_rass::scenario::example_network;

const FINE_WINDOWS: &str = r#"<photons>{ for $w in stream("photons")/photons/photon
    [coord/cel/ra >= 120.0 and coord/cel/ra <= 138.0]
    |det_time diff 20 step 10|
    return <wnd>{ $w }</wnd> }</photons>"#;

const COARSE_WINDOWS: &str = r#"<photons>{ for $w in stream("photons")/photons/photon
    [coord/cel/ra >= 120.0 and coord/cel/ra <= 138.0]
    |det_time diff 100 step 20|
    return <wnd>{ $w }</wnd> }</photons>"#;

/// Window-contents subscriptions share through re-windowing and deliver
/// wrapped photon runs identical to unshared evaluation.
#[test]
fn window_contents_share_end_to_end() {
    let mut shared = example_network();
    shared
        .register_query("fine", FINE_WINDOWS, "P1", Strategy::StreamSharing)
        .unwrap();
    let reg = shared
        .register_query("coarse", COARSE_WINDOWS, "P2", Strategy::StreamSharing)
        .unwrap();
    assert!(reg.reused_derived_stream);
    let sim = shared.run_simulation(SimConfig::default());
    let got = &sim.flow_outputs[reg.delivery_flow];
    assert!(!got.is_empty());

    let mut solo = example_network();
    let solo_reg = solo
        .register_query("coarse", COARSE_WINDOWS, "P2", Strategy::DataShipping)
        .unwrap();
    let solo_sim = solo.run_simulation(SimConfig::default());
    assert_eq!(got, &solo_sim.flow_outputs[solo_reg.delivery_flow]);

    // Every delivered window wraps in-region photons.
    for wnd in got {
        assert_eq!(wnd.name(), "wnd");
        for p in wnd.children() {
            let ra: f64 = p
                .child("coord")
                .and_then(|c| c.child("cel"))
                .and_then(|c| c.child("ra"))
                .and_then(|n| n.text())
                .unwrap()
                .parse()
                .unwrap();
            assert!((120.0..=138.0).contains(&ra));
        }
    }
}

/// Widening then unregistration interact safely: after the widening query
/// leaves, the stream is narrowed back to its original shape and keeps
/// serving the original consumer correctly.
#[test]
fn widening_survives_unregistration_of_the_widener() {
    let mut sys = example_network();
    sys.set_widening(true);
    let reg2 = sys
        .register_query("q2", queries::Q2, "P1", Strategy::StreamSharing)
        .unwrap();
    let reg1 = sys
        .register_query("q1", queries::Q1, "P3", Strategy::StreamSharing)
        .unwrap();
    assert!(
        reg1.plan.parts[0].widen.is_some(),
        "q1 should widen q2's stream"
    );

    // The widener leaves; q2 must keep its exact results.
    sys.unregister_query("q1").unwrap();
    let sim = sys.run_simulation(SimConfig::default());
    let q2_results = &sim.flow_outputs[reg2.delivery_flow];

    let mut solo = example_network();
    let solo2 = solo
        .register_query("q2", queries::Q2, "P1", Strategy::DataShipping)
        .unwrap();
    let solo_sim = solo.run_simulation(SimConfig::default());
    assert!(!q2_results.is_empty());
    assert_eq!(q2_results, &solo_sim.flow_outputs[solo2.delivery_flow]);
}

/// Unregistering the last widening consumer narrows the stream back: the
/// widened label and the survivors' restore patches disappear, and the
/// planner's resource charges return to their pre-widening values.
#[test]
fn unregistering_last_widener_narrows_the_stream_back() {
    let mut sys = example_network();
    sys.set_widening(true);
    sys.register_query("q2", queries::Q2, "P1", Strategy::StreamSharing)
        .unwrap();
    // Snapshot the planner charges with only q2 installed.
    let edges_before = sys.state().edge_used_kbps.clone();
    let nodes_before = sys.state().node_used_work.clone();
    let labels_before: Vec<String> = sys
        .deployment()
        .flows()
        .iter()
        .filter(|f| !f.retired)
        .map(|f| f.label.clone())
        .collect();

    let reg1 = sys
        .register_query("q1", queries::Q1, "P3", Strategy::StreamSharing)
        .unwrap();
    assert!(reg1.plan.parts[0].widen.is_some(), "q1 widens q2's stream");
    assert!(
        sys.deployment()
            .flows()
            .iter()
            .any(|f| !f.retired && f.label.contains("+widened")),
        "the widened stream must be visibly relabeled"
    );

    sys.unregister_query("q1").unwrap();

    // The widened stream reverted: same labels as before q1 arrived…
    let labels_after: Vec<String> = sys
        .deployment()
        .flows()
        .iter()
        .filter(|f| !f.retired)
        .map(|f| f.label.clone())
        .collect();
    assert_eq!(labels_before, labels_after);
    // …and the charges match the pre-widening snapshot (the widening's
    // extra bandwidth and the survivors' restore-patch work are released).
    for (e, (&before, &after)) in edges_before
        .iter()
        .zip(sys.state().edge_used_kbps.iter())
        .enumerate()
    {
        assert!(
            (before - after).abs() < 1e-6,
            "edge {e}: {before} kbps before widening vs {after} after narrow-back"
        );
    }
    for (v, (&before, &after)) in nodes_before
        .iter()
        .zip(sys.state().node_used_work.iter())
        .enumerate()
    {
        assert!(
            (before - after).abs() < 1e-6,
            "node {v}: work {before} before widening vs {after} after narrow-back"
        );
    }
}

/// Unregistering in arbitrary orders never corrupts remaining consumers.
#[test]
fn unregistration_orders_preserve_survivors() {
    for drop_order in [["Q1", "Q3"], ["Q3", "Q1"]] {
        let mut sys = example_network();
        for (name, text, peer) in [
            ("Q1", queries::Q1, "P1"),
            ("Q2", queries::Q2, "P2"),
            ("Q3", queries::Q3, "P3"),
            ("Q4", queries::Q4, "P4"),
        ] {
            sys.register_query(name, text, peer, Strategy::StreamSharing)
                .unwrap();
        }
        for q in drop_order {
            sys.unregister_query(q).unwrap();
        }
        // Q2 and Q4 survive and still deliver the reference results.
        let sim = sys.run_simulation(SimConfig::default());
        let by_label = |label: &str| {
            sys.deployment()
                .flows()
                .iter()
                .position(|f| f.label == label)
                .map(|i| sim.flow_outputs[i].clone())
                .unwrap()
        };
        let mut solo = example_network();
        let s2 = solo
            .register_query("Q2", queries::Q2, "P2", Strategy::DataShipping)
            .unwrap();
        let s4 = solo
            .register_query("Q4", queries::Q4, "P4", Strategy::DataShipping)
            .unwrap();
        let solo_sim = solo.run_simulation(SimConfig::default());
        assert_eq!(
            by_label("Q2/result"),
            solo_sim.flow_outputs[s2.delivery_flow],
            "drop order {drop_order:?}"
        );
        assert_eq!(
            by_label("Q4/result"),
            solo_sim.flow_outputs[s4.delivery_flow],
            "drop order {drop_order:?}"
        );
    }
}

/// Double unregistration errors cleanly.
#[test]
fn double_unregistration_errors() {
    let mut sys = example_network();
    sys.register_query("q1", queries::Q1, "P1", Strategy::StreamSharing)
        .unwrap();
    sys.unregister_query("q1").unwrap();
    assert!(matches!(
        sys.unregister_query("q1"),
        Err(SystemError::UnknownQuery(_))
    ));
}

/// The extensions compose: window-contents queries can be unregistered and
/// the retired streams stop being shared.
#[test]
fn window_contents_unregistration() {
    let mut sys = example_network();
    sys.register_query("fine", FINE_WINDOWS, "P1", Strategy::StreamSharing)
        .unwrap();
    sys.unregister_query("fine").unwrap();
    let reg = sys
        .register_query("coarse", COARSE_WINDOWS, "P2", Strategy::StreamSharing)
        .unwrap();
    assert!(
        !reg.reused_derived_stream,
        "retired window stream must not be reused"
    );
    let sim = sys.run_simulation(SimConfig::default());
    assert!(!sim.flow_outputs[reg.delivery_flow].is_empty());
}
