//! Differential tests: the engine against the naive reference oracle.
//!
//! `dss_oracle::interpreter` re-derives WXQuery semantics from the paper
//! with zero shared execution code; `dss_oracle::harness` generates random
//! streams and subscriptions and asserts byte-exact agreement across the
//! engine pipeline, all three planning strategies with operator fusion on
//! and off, and the live runtime under an injected peer crash.
//!
//! The metamorphic groups below target the *matching* layer, where no
//! second implementation exists to diff against: predicate matching must
//! be an implication (checked by random-valuation sampling), and window
//! compatibility must mean coarse windows are exact merges of fine ones
//! (checked by re-aggregating oracle windows).
//!
//! Budget: `DSS_DIFF_CASES` (default 64) cases per property; CI runs 256.
//! `DSS_PROPTEST_SEED` picks the deterministic case stream; failing seeds
//! are persisted in `proptest-regressions/` and replayed first.

use proptest::prelude::*;

use data_stream_sharing::engine::AggItem;
use data_stream_sharing::predicate::{match_predicates, Atom, CompOp, PredicateGraph};
use data_stream_sharing::properties::AggOp;
use data_stream_sharing::xml::{Decimal, Node, Path};
use dss_oracle::harness::{
    arb_case, check_live, check_live_widening, check_network, check_pipeline, check_shrinking, Case,
};
use dss_oracle::interpreter::{diff_windows, Accumulator};

fn diff_cases() -> u32 {
    std::env::var("DSS_DIFF_CASES")
        .ok()
        .and_then(|s| s.trim().parse().ok())
        .unwrap_or(64)
}

// ---------------------------------------------------------------------
// The four end-to-end equivalences
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(diff_cases()))]

    /// Equivalence 1: the engine's operator pipeline produces exactly the
    /// oracle's results, streamed and flushed alike.
    #[test]
    fn engine_pipeline_matches_oracle(case in arb_case()) {
        if let Err(e) = check_shrinking(&case, &check_pipeline) {
            prop_assert!(false, "{}", e);
        }
    }

    /// Equivalences 2 + 3: every planning strategy delivers the oracle's
    /// results, with fused operator DAGs on and off.
    #[test]
    fn network_deployments_match_oracle(case in arb_case()) {
        if let Err(e) = check_shrinking(&case, &check_network) {
            prop_assert!(false, "{}", e);
        }
    }

    /// Equivalence 4: the live runtime with an injected peer crash
    /// re-delivers exactly the oracle's post-recovery results.
    #[test]
    fn live_runtime_with_faults_matches_oracle(case in arb_case()) {
        if let Err(e) = check_shrinking(&case, &check_live) {
            prop_assert!(false, "{}", e);
        }
    }

    /// Equivalence 4, widening split: with stream widening enabled, the
    /// failover re-plans may patch *untouched* queries' flows in place
    /// (restore ops splice in front of their chains). Those queries must
    /// still deliver the whole-stream oracle results — the planned
    /// loss-free handoff has to migrate their open window state across
    /// the in-place rebuild.
    #[test]
    fn live_runtime_widening_matches_oracle(case in arb_case()) {
        if let Err(e) = check_shrinking(&case, &check_live_widening) {
            prop_assert!(false, "{}", e);
        }
    }
}

/// The harness must catch a seeded bug: this is exercised out-of-band by
/// `scripts/mutation_smoke.sh`, which breaks the window-equality rule in
/// `dss_network::shared::ops_mergeable` and expects
/// `network_deployments_match_oracle` to fail with a shrunk
/// counterexample.
#[test]
fn fixed_corpus_passes_all_equivalences() {
    use dss_rass::{GeneratorConfig, PhotonGenerator};
    use dss_wxquery::testing::arb_query;
    let items = PhotonGenerator::new(GeneratorConfig {
        seed: 20060329,
        mean_time_increment: 0.25,
        ..GeneratorConfig::default()
    })
    .generate_items(48);
    let mut rng = proptest::test_runner::TestRng::from_seed(20060329);
    let queries: Vec<_> = (0..4).map(|_| arb_query().sample(&mut rng)).collect();
    for chunk in queries.chunks(2) {
        let case = Case {
            items: items.clone(),
            queries: chunk.to_vec(),
        };
        check_pipeline(&case).unwrap();
        check_network(&case).unwrap();
        check_live(&case).unwrap();
        check_live_widening(&case).unwrap();
    }
}

/// Deterministic target for `scripts/mutation_smoke.sh`: two
/// subscriptions identical except for window size. Under operator fusion
/// their chains land in one sharing group, but the aggregation instances
/// must stay separate — `ops_mergeable`'s identical-window rule. Breaking
/// that rule merges them onto one window sequence and this diff fails
/// with a shrunk counterexample.
#[test]
fn fused_aggregates_with_different_windows_stay_separate() {
    use dss_rass::{GeneratorConfig, PhotonGenerator};
    use dss_wxquery::testing::{BodySpec, QuerySpec, WindowChoice};
    let agg = |size: i64| QuerySpec {
        stream: "photons".to_string(),
        stream_root: "photons".to_string(),
        item: "photon".to_string(),
        result_root: None,
        selection: Vec::new(),
        window: Some(WindowChoice::Diff {
            size: Decimal::from_int(size),
            step: None,
        }),
        body: BodySpec::Aggregate {
            tag: "out".to_string(),
            op: AggOp::Sum,
            element: "en".to_string(),
            filter: Vec::new(),
        },
    };
    let items = PhotonGenerator::new(GeneratorConfig {
        seed: 20060330,
        mean_time_increment: 0.25,
        ..GeneratorConfig::default()
    })
    .generate_items(32);
    let case = Case {
        items,
        queries: vec![agg(2), agg(4)],
    };
    if let Err(e) = check_shrinking(&case, &check_network) {
        panic!("{e}");
    }
}

// ---------------------------------------------------------------------
// Metamorphic: predicate matching is an implication
// ---------------------------------------------------------------------

const PRED_PATHS: [&str; 4] = ["en", "phc", "det_time", "coord/cel/ra"];

fn p(path: &str) -> Path {
    path.parse().expect("static test path")
}

fn arb_comp_op() -> BoxedStrategy<CompOp> {
    prop_oneof![
        Just(CompOp::Eq),
        Just(CompOp::Lt),
        Just(CompOp::Le),
        Just(CompOp::Gt),
        Just(CompOp::Ge),
    ]
    .boxed()
}

fn arb_pred_atom() -> BoxedStrategy<Atom> {
    (
        0usize..PRED_PATHS.len(),
        arb_comp_op(),
        -400i64..400,
        0u32..2,
        0usize..6,
    )
        .prop_map(|(var, op, units, scale, var2)| {
            let c = Decimal::new(units as i128, scale);
            if var2 < PRED_PATHS.len() && var2 != var {
                Atom::var_var(p(PRED_PATHS[var]), op, p(PRED_PATHS[var2]), c)
            } else {
                Atom::var_const(p(PRED_PATHS[var]), op, c)
            }
        })
        .boxed()
}

/// Builds a stream item carrying the given path valuations (`None` leaves
/// the element out — fail-closed territory).
fn valuation_item(vals: &[Option<Decimal>]) -> Node {
    let mut item = Node::empty("photon");
    for (path, v) in PRED_PATHS.iter().zip(vals) {
        let Some(v) = v else { continue };
        let mut segs = path.split('/').rev();
        let mut node = Node::leaf(segs.next().expect("non-empty path"), v.to_string());
        for seg in segs {
            let mut parent = Node::empty(seg);
            parent.push_child(node);
            node = parent;
        }
        item.push_child(node);
    }
    item
}

/// Boundary-biased candidate values: every constant in the atoms, its
/// immediate decimal neighbours, zero, and "element missing".
fn valuation_candidates(atoms: &[Atom]) -> Vec<Option<Decimal>> {
    let mut out = vec![None, Some(Decimal::ZERO)];
    for atom in atoms {
        let c = match &atom.rhs {
            data_stream_sharing::predicate::Term::Const(c) => *c,
            data_stream_sharing::predicate::Term::VarPlus(_, c) => *c,
        };
        let ulp = Decimal::new(1, c.scale());
        for v in [c, c + ulp, c - ulp] {
            if !out.contains(&Some(v)) {
                out.push(Some(v));
            }
        }
    }
    out
}

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(diff_cases()))]

    /// If `match_predicates(g_stream, g_new)` accepts a reuse, then the
    /// new query's predicate must imply the stream's: no sampled valuation
    /// may pass the new predicate while failing the stream's filter —
    /// that would silently drop result items from the shared stream.
    #[test]
    fn predicate_match_implies_containment(
        stream_atoms in prop::collection::vec(arb_pred_atom(), 0..3),
        new_atoms in prop::collection::vec(arb_pred_atom(), 0..3),
        extra_shared in 0usize..2,
        seed in 0u64..u64::MAX,
    ) {
        // Bias toward accepted matches: often seed the new query with the
        // stream's own atoms (a superset predicate always matches).
        let mut new_atoms = new_atoms;
        if extra_shared == 0 {
            new_atoms.extend(stream_atoms.iter().cloned());
        }
        let g_stream = PredicateGraph::from_atoms(stream_atoms.iter());
        let g_new = PredicateGraph::from_atoms(new_atoms.iter());
        if match_predicates(&g_stream, &g_new) {
            let all: Vec<Atom> = stream_atoms.iter().chain(new_atoms.iter()).cloned().collect();
            let candidates = valuation_candidates(&all);
            let mut state = seed;
            for _ in 0..400 {
                let vals: Vec<Option<Decimal>> = (0..PRED_PATHS.len())
                    .map(|_| candidates[(splitmix(&mut state) as usize) % candidates.len()])
                    .collect();
                let item = valuation_item(&vals);
                if g_new.evaluate(&item) {
                    prop_assert!(
                        g_stream.evaluate(&item),
                        "match_predicates accepted a non-containment: item {vals:?} \
                         passes the new predicate but fails the stream's\n \
                         stream atoms: {stream_atoms:?}\n new atoms: {new_atoms:?}"
                    );
                }
            }
        }
    }
}

/// Pins the matching direction the sampling test relies on: the *new*
/// query must be at least as selective as the shared stream, never the
/// other way around.
#[test]
fn predicate_match_direction_is_new_implies_stream() {
    let wide = PredicateGraph::from_atoms(
        [Atom::var_const(p("en"), CompOp::Ge, Decimal::from_int(100))].iter(),
    );
    let narrow = PredicateGraph::from_atoms(
        [Atom::var_const(p("en"), CompOp::Ge, Decimal::from_int(200))].iter(),
    );
    assert!(
        match_predicates(&wide, &narrow),
        "narrower query reuses wider stream"
    );
    assert!(
        !match_predicates(&narrow, &wide),
        "wider query must not reuse narrower stream"
    );
}

// ---------------------------------------------------------------------
// Metamorphic: window compatibility means exact re-aggregation
// ---------------------------------------------------------------------

/// Monotone `(det_time, en)` streams plus a window-compatible pair: fine
/// tumbling windows of size `w`, coarse windows of size `a·w` sliding by
/// `b·w` with `1 ≤ b ≤ a` — exactly the `Δ' mod Δ = 0` / `Δ mod µ = 0`
/// shape the MatchAggregations rule accepts.
fn arb_window_law() -> BoxedStrategy<(Vec<Node>, Decimal, i128, i128)> {
    (
        prop::collection::vec((1i64..40, prop::option::of(0i64..500)), 0..60),
        5i64..80,
        1i64..5,
    )
        .prop_flat_map(|(sketch, w_tenths, a)| {
            (Just(sketch), Just(w_tenths), Just(a), 1i64..(a + 1))
        })
        .prop_map(|(sketch, w_tenths, a, b)| {
            let mut t = 0i64;
            let mut items = Vec::with_capacity(sketch.len());
            for (dt, en) in sketch {
                t += dt;
                let mut item = Node::empty("photon");
                item.push_child(Node::leaf(
                    "det_time",
                    Decimal::new(t as i128, 1).to_string(),
                ));
                if let Some(en) = en {
                    item.push_child(Node::leaf("en", Decimal::new(en as i128, 1).to_string()));
                }
                items.push(item);
            }
            (
                items,
                Decimal::new(w_tenths as i128, 1),
                a as i128,
                b as i128,
            )
        })
        .boxed()
}

fn accumulate(vals: &[Decimal]) -> Accumulator {
    let mut acc = Accumulator::default();
    for &v in vals {
        acc.add(v);
    }
    acc
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(diff_cases()))]

    /// Every coarse window is exactly the concatenation of the fine
    /// tumbling windows it spans (the value-level law behind window
    /// re-use), and merging the fine windows' accumulators equals
    /// accumulating the coarse window directly (the partial-aggregate
    /// law behind `ReAggregateOp`) — including the derived average.
    #[test]
    fn coarse_windows_are_merges_of_fine(law in arb_window_law()) {
        let (items, w, a, b) = law;
        let reference = p("det_time");
        let element = p("en");
        let aw = Decimal::new(w.units() * a, w.scale());
        let bw = Decimal::new(w.units() * b, w.scale());
        let fine = diff_windows(&items, &reference, &element, w, w);
        let coarse = diff_windows(&items, &reference, &element, aw, bw);

        // Expected coarse windows, assembled from the fine ones: grid
        // starts are multiples of b·w, and (grids aligned) a fine window
        // lies inside iff its start does.
        let mut expected: std::collections::BTreeMap<String, Vec<Decimal>> =
            std::collections::BTreeMap::new();
        if let Some(max_fs) = fine.last().map(|(fs, _)| *fs) {
            let mut s = Decimal::ZERO;
            while s <= max_fs {
                // A window materializes as soon as an *item* lands in it,
                // even if the aggregated element is missing — so the
                // coarse window must exist iff any fine window (possibly
                // empty) lies in its span.
                let spanned: Vec<&(Decimal, Vec<Decimal>)> = fine
                    .iter()
                    .filter(|(fs, _)| s <= *fs && *fs < s + aw)
                    .collect();
                if !spanned.is_empty() {
                    let vals = spanned
                        .iter()
                        .flat_map(|(_, vs)| vs.iter().copied())
                        .collect();
                    expected.insert(s.to_string(), vals);
                }
                s = s + bw;
            }
        }
        let got: std::collections::BTreeMap<String, Vec<Decimal>> = coarse
            .iter()
            .map(|(s, vs)| (s.to_string(), vs.clone()))
            .collect();
        prop_assert_eq!(
            &got, &expected,
            "coarse windows (size {}·{}, step {}·{}) disagree with fine tiling", a, w, b, w
        );

        // Partial-aggregate law: merge(fine accumulators) == direct.
        for (s, vals) in &coarse {
            let direct = accumulate(vals);
            let mut merged = Accumulator::default();
            for (fs, fvals) in &fine {
                if *s <= *fs && *fs < *s + aw {
                    merged.merge(&accumulate(fvals));
                }
            }
            prop_assert_eq!(&merged, &direct, "merged partials diverge at window start {}", s);
            prop_assert_eq!(merged.avg(6), direct.avg(6));
        }
    }
}

// ---------------------------------------------------------------------
// Metamorphic: the engine's AggItem against the oracle's Accumulator
// ---------------------------------------------------------------------

fn arb_values() -> BoxedStrategy<Vec<Decimal>> {
    prop::collection::vec(
        (-2_000_000i64..2_000_000, 0u32..4).prop_map(|(u, s)| Decimal::new(u as i128, s)),
        0..40,
    )
    .boxed()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(diff_cases()))]

    /// The engine's wire-format partial (`AggItem`) and the oracle's
    /// independently derived `Accumulator` agree on every aggregate,
    /// every average, and every filter decision, for arbitrary value
    /// sequences.
    #[test]
    fn agg_item_matches_oracle_accumulator(
        vals in arb_values(),
        filter_units in -2_000_000i64..2_000_000,
        filter_scale in 0u32..4,
    ) {
        let mut engine = AggItem::default();
        let mut oracle = Accumulator::default();
        for &v in &vals {
            engine.add_value(v);
            oracle.add(v);
        }
        prop_assert_eq!(engine.count, oracle.count);
        prop_assert_eq!(engine.sum, oracle.sum);
        prop_assert_eq!(engine.min, oracle.min);
        prop_assert_eq!(engine.max, oracle.max);
        for op in [AggOp::Count, AggOp::Sum, AggOp::Min, AggOp::Max, AggOp::Avg] {
            prop_assert_eq!(engine.final_value(op), oracle.value_of(op), "op {:?}", op);
        }
        for scale in [0u32, 1, 6, 12] {
            prop_assert_eq!(engine.avg_value(scale), oracle.avg(scale), "avg scale {}", scale);
        }
        let c = Decimal::new(filter_units as i128, filter_scale);
        for op in [CompOp::Eq, CompOp::Lt, CompOp::Le, CompOp::Gt, CompOp::Ge] {
            prop_assert_eq!(
                engine.avg_compare(op, c),
                oracle.passes_filter(AggOp::Avg, &[(op, c)]),
                "avg filter {:?} {}", op, c
            );
            let engine_plain = engine.final_value(AggOp::Sum)
                .map(|v| op.evaluate(v, c))
                .unwrap_or(false);
            prop_assert_eq!(
                engine_plain,
                oracle.passes_filter(AggOp::Sum, &[(op, c)]),
                "sum filter {:?} {}", op, c
            );
        }
    }
}
