//! Integration tests over the paper's two evaluation scenarios: the
//! qualitative shapes of Figures 6/7, Table 1, and the rejection
//! experiment, asserted end-to-end.

use data_stream_sharing::core::{AdmissionControl, Strategy};
use data_stream_sharing::network::SimConfig;
use data_stream_sharing::rass::Scenario;

fn sim_cfg(s: &Scenario) -> SimConfig {
    SimConfig {
        duration_s: s.streams[0].items.len() as f64 / s.streams[0].frequency,
        ..SimConfig::default()
    }
}

#[test]
fn scenario1_figure6_shapes() {
    let scenario = Scenario::scenario1(42);
    let mut totals = Vec::new();
    let mut peaks = Vec::new();
    let mut cpu_totals = Vec::new();
    let topo = scenario.topology.clone();
    let sp4 = topo.expect_node("SP4");
    for strategy in Strategy::ALL {
        let out = scenario.run(strategy, false);
        assert_eq!(out.registrations.len(), 25, "{strategy}: {:?}", out.errored);
        let sim = out.simulate(sim_cfg(&scenario));
        totals.push(sim.metrics.total_edge_bytes());
        let loads: Vec<f64> = topo
            .super_peers()
            .iter()
            .map(|&v| sim.metrics.node_load_pct(&topo, v))
            .collect();
        peaks.push((
            loads.iter().cloned().fold(0.0, f64::max),
            sim.metrics.node_load_pct(&topo, sp4),
        ));
        cpu_totals.push(loads.iter().sum::<f64>());
    }
    // Traffic: data shipping ≫ query shipping > stream sharing.
    assert!(
        totals[0] > totals[1] && totals[1] > totals[2],
        "traffic ordering: {totals:?}"
    );
    // Query shipping produces a massive peak at the source super-peer SP4.
    let (qs_peak, qs_sp4) = peaks[1];
    assert!(
        (qs_peak - qs_sp4).abs() < 1e-9,
        "query shipping's CPU peak must be at SP4 (peak {qs_peak}, SP4 {qs_sp4})"
    );
    // Stream sharing causes the least overall CPU load.
    assert!(
        cpu_totals[2] < cpu_totals[0] && cpu_totals[2] < cpu_totals[1],
        "stream sharing total CPU should be lowest: {cpu_totals:?}"
    );
}

#[test]
fn scenario2_figure7_shapes() {
    let scenario = Scenario::scenario2(42);
    let topo = scenario.topology.clone();
    let mut totals = Vec::new();
    for strategy in Strategy::ALL {
        let out = scenario.run(strategy, false);
        assert_eq!(
            out.registrations.len(),
            100,
            "{strategy}: {:?}",
            out.errored
        );
        let sim = out.simulate(sim_cfg(&scenario));
        totals.push(sim.metrics.total_edge_bytes());
        if strategy == Strategy::QueryShipping {
            // The CPU peaks sit at the stream sources SP0 and SP15.
            let loads: Vec<(String, f64)> = topo
                .super_peers()
                .iter()
                .map(|&v| {
                    (
                        topo.peer(v).name.clone(),
                        sim.metrics.node_load_pct(&topo, v),
                    )
                })
                .collect();
            let mut sorted = loads.clone();
            sorted.sort_by(|a, b| b.1.total_cmp(&a.1));
            let top2: Vec<&str> = sorted[..2].iter().map(|(n, _)| n.as_str()).collect();
            assert!(
                top2.contains(&"SP0") && top2.contains(&"SP15"),
                "query shipping peaks must be the source peers, got {sorted:?}"
            );
        }
    }
    assert!(
        totals[0] > totals[1] && totals[1] > totals[2],
        "traffic ordering: {totals:?}"
    );
}

#[test]
fn registration_times_within_small_factor() {
    // Table 1's qualitative claim: "The stream sharing approach stays
    // within a factor of 3 of the other two much simpler approaches."
    // Wall-clock measurements are noisy in CI, so allow a wide margin while
    // still catching pathological blowups.
    let scenario = Scenario::scenario1(42);
    let avg = |strategy: Strategy| {
        let out = scenario.run(strategy, false);
        let total: std::time::Duration = out.registrations.iter().map(|r| r.elapsed).sum();
        total.as_secs_f64() / out.registrations.len() as f64
    };
    let ds = avg(Strategy::DataShipping);
    let ss = avg(Strategy::StreamSharing);
    assert!(
        ss < ds * 60.0,
        "stream sharing registration ({ss:.6}s) should stay within a small factor of \
         data shipping ({ds:.6}s)"
    );
}

#[test]
fn rejection_experiment_shape() {
    let scenario = Scenario::scenario2(42);
    let mut rejected = Vec::new();
    for strategy in Strategy::ALL {
        let mut system = scenario.build_system();
        AdmissionControl::apply_caps(&mut system, 0.10, 1_000.0);
        let batch: Vec<(String, String, String)> = scenario
            .queries
            .iter()
            .map(|q| (q.id.clone(), q.text.clone(), q.peer.clone()))
            .collect();
        let report = AdmissionControl::register_batch(&mut system, &batch, strategy);
        assert!(
            report.errored.is_empty(),
            "{strategy}: {:?}",
            report.errored
        );
        assert_eq!(report.accepted_count() + report.rejected_count(), 100);
        rejected.push(report.rejected_count());
    }
    // Paper: 47 / 35 / 2.
    assert!(
        rejected[0] > rejected[1],
        "data shipping should reject more than query shipping: {rejected:?}"
    );
    assert!(
        rejected[1] > rejected[2],
        "query shipping should reject more than stream sharing: {rejected:?}"
    );
    assert!(
        rejected[2] <= 5,
        "stream sharing rejects almost nothing: {rejected:?}"
    );
    // Pin the exact seed-42 counts so a silent cost-model change (like the
    // duplicate-selectivity double-count this fixed) shows up in review
    // rather than drifting unnoticed. Data shipping lands exactly on the
    // paper's 47.
    assert_eq!(
        rejected,
        vec![47, 24, 0],
        "seed-42 rejection counts changed — cost model drift?"
    );
}

#[test]
fn sharing_reuses_many_streams_in_scenario1() {
    let scenario = Scenario::scenario1(42);
    let out = scenario.run(Strategy::StreamSharing, false);
    let reused = out
        .registrations
        .iter()
        .filter(|r| r.reused_derived_stream)
        .count();
    // The template value sets are small; a decent share of the 25 queries
    // must land on previously generated streams.
    assert!(
        reused >= 5,
        "only {reused} of 25 queries reused derived streams"
    );
}

#[test]
fn super_peer_crash_replans_and_keeps_delivering() {
    // The paper's motivating deployment routes the shared stream through
    // SP5. Crash SP5 mid-run: the queries riding it (q1 at P1, q2 at P2)
    // must be re-planned onto surviving streams and keep delivering, while
    // the untouched q_east at P4 never stops.
    use data_stream_sharing::core::Strategy;
    use data_stream_sharing::network::runtime::{FaultScript, LiveConfig};
    use data_stream_sharing::wxquery::queries;

    let mut system = dss_rass::scenario::example_network();
    for (name, text, peer) in [
        ("q_east", queries::Q1, "P4"),
        ("q1", queries::Q1, "P1"),
        ("q2", queries::Q2, "P2"),
    ] {
        system
            .register_query(name, text, peer, Strategy::StreamSharing)
            .expect("query registers");
    }
    let sp5 = system.topology().expect_node("SP5");
    assert!(
        system
            .deployment()
            .flows()
            .iter()
            .any(|f| !f.retired && (f.processing_node == sp5 || f.route.contains(&sp5))),
        "precondition: the shared deployment must actually use SP5"
    );

    let cfg = LiveConfig {
        duration_s: 60.0,
        ..Default::default()
    };
    let faults = FaultScript::new().crash_peer(10.0, sp5);
    let outcome = system.run_live(cfg, &faults).expect("live run succeeds");

    assert_eq!(outcome.failovers.len(), 1);
    let report = &outcome.failovers[0];
    assert_eq!(report.peer, sp5);
    assert!(
        report.failed.is_empty(),
        "failed replans: {:?}",
        report.failed
    );
    let mut replanned: Vec<&str> = report
        .replanned
        .iter()
        .map(|r| r.query_id.as_str())
        .collect();
    replanned.sort_unstable();
    assert_eq!(replanned, ["q1", "q2"], "exactly the SP5 riders re-plan");

    // The re-planned deployment must avoid the dead peer entirely.
    for f in system.deployment().flows().iter().filter(|f| !f.retired) {
        assert_ne!(f.processing_node, sp5, "{} still processed at SP5", f.label);
        assert!(!f.route.contains(&sp5), "{} still routed via SP5", f.label);
    }

    // Every query delivers; the re-planned ones record a recovery time.
    for q in ["q_east", "q1", "q2"] {
        let m = &outcome.metrics.queries[q];
        assert!(m.delivered > 0, "{q} delivered nothing");
    }
    for q in ["q1", "q2"] {
        let m = &outcome.metrics.queries[q];
        assert!(
            !m.recoveries_us.is_empty(),
            "{q} should record its post-fault recovery"
        );
    }
    assert!(outcome.metrics.queries["q_east"].recoveries_us.is_empty());
}

#[test]
fn unperturbed_live_run_matches_batch_results() {
    // Without faults, the live runtime is just a timed replay of the same
    // deployment the batch simulator processes: it must not change what
    // queries receive, only add timestamps.
    use data_stream_sharing::core::Strategy;
    use data_stream_sharing::network::runtime::{FaultScript, LiveConfig};

    let scenario = Scenario::scenario1(42);
    let mut out = scenario.run(Strategy::StreamSharing, false);
    let batch = out.simulate(sim_cfg(&scenario));
    let cfg = LiveConfig {
        duration_s: sim_cfg(&scenario).duration_s + 1.0,
        ..Default::default()
    };
    let live = out
        .run_live(cfg, &FaultScript::new())
        .expect("live run succeeds");
    assert!(live.failovers.is_empty());
    assert_eq!(live.metrics.items_lost, 0);
    assert_eq!(live.metrics.total_dropped(), 0);

    // Windowed operators buffer state that the batch simulator flushes at
    // end-of-input but the live runtime (deliberately) does not, so
    // windowed chains may deliver fewer items — never more, and never
    // different ones. Stateless chains must match the batch run exactly.
    use data_stream_sharing::network::{FlowInput, FlowOp};
    use data_stream_sharing::properties::Operator;
    let chain_is_stateless = |flow: usize| -> bool {
        let mut cur = Some(flow);
        while let Some(id) = cur {
            let f = &out.system.deployment().flows()[id];
            let windowed = f.ops.iter().any(|op| {
                matches!(
                    op,
                    FlowOp::Standard(Operator::Aggregation(_))
                        | FlowOp::Standard(Operator::WindowOutput(_))
                        | FlowOp::ReAggregate { .. }
                        | FlowOp::ReWindow { .. }
                )
            });
            if windowed {
                return false;
            }
            cur = match f.input {
                FlowInput::Tap { parent } => Some(parent),
                FlowInput::Source { .. } => None,
            };
        }
        true
    };
    let mut stateless_queries = 0;
    for reg in &out.registrations {
        let delivered = live.metrics.queries[&reg.query_id].delivered;
        let batch_count = batch.flow_outputs[reg.delivery_flow].len() as u64;
        if chain_is_stateless(reg.delivery_flow) {
            stateless_queries += 1;
            assert_eq!(
                delivered, batch_count,
                "stateless query {}: live delivered {delivered}, batch {batch_count}",
                reg.query_id
            );
        } else {
            assert!(
                delivered <= batch_count,
                "windowed query {}: live delivered {delivered} > batch {batch_count}",
                reg.query_id
            );
        }
    }
    assert!(
        stateless_queries > 0,
        "scenario 1 should contain selection-only template queries"
    );
}

#[test]
fn different_seeds_preserve_shapes() {
    for seed in [1u64, 7, 1234] {
        let scenario = Scenario::scenario1(seed);
        let mut totals = Vec::new();
        for strategy in Strategy::ALL {
            let out = scenario.run(strategy, false);
            assert!(
                out.errored.is_empty(),
                "seed {seed}, {strategy}: {:?}",
                out.errored
            );
            totals.push(out.simulate(sim_cfg(&scenario)).metrics.total_edge_bytes());
        }
        assert!(
            totals[0] > totals[2],
            "seed {seed}: sharing must beat data shipping ({totals:?})"
        );
        assert!(
            totals[1] >= totals[2],
            "seed {seed}: sharing must not exceed query shipping ({totals:?})"
        );
    }
}
