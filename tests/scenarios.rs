//! Integration tests over the paper's two evaluation scenarios: the
//! qualitative shapes of Figures 6/7, Table 1, and the rejection
//! experiment, asserted end-to-end.

use data_stream_sharing::core::{AdmissionControl, Strategy};
use data_stream_sharing::network::SimConfig;
use data_stream_sharing::rass::Scenario;

fn sim_cfg(s: &Scenario) -> SimConfig {
    SimConfig {
        duration_s: s.streams[0].items.len() as f64 / s.streams[0].frequency,
        ..SimConfig::default()
    }
}

#[test]
fn scenario1_figure6_shapes() {
    let scenario = Scenario::scenario1(42);
    let mut totals = Vec::new();
    let mut peaks = Vec::new();
    let mut cpu_totals = Vec::new();
    let topo = scenario.topology.clone();
    let sp4 = topo.expect_node("SP4");
    for strategy in Strategy::ALL {
        let out = scenario.run(strategy, false);
        assert_eq!(out.registrations.len(), 25, "{strategy}: {:?}", out.errored);
        let sim = out.simulate(sim_cfg(&scenario));
        totals.push(sim.metrics.total_edge_bytes());
        let loads: Vec<f64> = topo
            .super_peers()
            .iter()
            .map(|&v| sim.metrics.node_load_pct(&topo, v))
            .collect();
        peaks.push((
            loads.iter().cloned().fold(0.0, f64::max),
            sim.metrics.node_load_pct(&topo, sp4),
        ));
        cpu_totals.push(loads.iter().sum::<f64>());
    }
    // Traffic: data shipping ≫ query shipping > stream sharing.
    assert!(
        totals[0] > totals[1] && totals[1] > totals[2],
        "traffic ordering: {totals:?}"
    );
    // Query shipping produces a massive peak at the source super-peer SP4.
    let (qs_peak, qs_sp4) = peaks[1];
    assert!(
        (qs_peak - qs_sp4).abs() < 1e-9,
        "query shipping's CPU peak must be at SP4 (peak {qs_peak}, SP4 {qs_sp4})"
    );
    // Stream sharing causes the least overall CPU load.
    assert!(
        cpu_totals[2] < cpu_totals[0] && cpu_totals[2] < cpu_totals[1],
        "stream sharing total CPU should be lowest: {cpu_totals:?}"
    );
}

#[test]
fn scenario2_figure7_shapes() {
    let scenario = Scenario::scenario2(42);
    let topo = scenario.topology.clone();
    let mut totals = Vec::new();
    for strategy in Strategy::ALL {
        let out = scenario.run(strategy, false);
        assert_eq!(
            out.registrations.len(),
            100,
            "{strategy}: {:?}",
            out.errored
        );
        let sim = out.simulate(sim_cfg(&scenario));
        totals.push(sim.metrics.total_edge_bytes());
        if strategy == Strategy::QueryShipping {
            // The CPU peaks sit at the stream sources SP0 and SP15.
            let loads: Vec<(String, f64)> = topo
                .super_peers()
                .iter()
                .map(|&v| {
                    (
                        topo.peer(v).name.clone(),
                        sim.metrics.node_load_pct(&topo, v),
                    )
                })
                .collect();
            let mut sorted = loads.clone();
            sorted.sort_by(|a, b| b.1.total_cmp(&a.1));
            let top2: Vec<&str> = sorted[..2].iter().map(|(n, _)| n.as_str()).collect();
            assert!(
                top2.contains(&"SP0") && top2.contains(&"SP15"),
                "query shipping peaks must be the source peers, got {sorted:?}"
            );
        }
    }
    assert!(
        totals[0] > totals[1] && totals[1] > totals[2],
        "traffic ordering: {totals:?}"
    );
}

#[test]
fn registration_times_within_small_factor() {
    // Table 1's qualitative claim: "The stream sharing approach stays
    // within a factor of 3 of the other two much simpler approaches."
    // Wall-clock measurements are noisy in CI, so allow a wide margin while
    // still catching pathological blowups.
    let scenario = Scenario::scenario1(42);
    let avg = |strategy: Strategy| {
        let out = scenario.run(strategy, false);
        let total: std::time::Duration = out.registrations.iter().map(|r| r.elapsed).sum();
        total.as_secs_f64() / out.registrations.len() as f64
    };
    let ds = avg(Strategy::DataShipping);
    let ss = avg(Strategy::StreamSharing);
    assert!(
        ss < ds * 60.0,
        "stream sharing registration ({ss:.6}s) should stay within a small factor of \
         data shipping ({ds:.6}s)"
    );
}

#[test]
fn rejection_experiment_shape() {
    let scenario = Scenario::scenario2(42);
    let mut rejected = Vec::new();
    for strategy in Strategy::ALL {
        let mut system = scenario.build_system();
        AdmissionControl::apply_caps(&mut system, 0.10, 1_000.0);
        let batch: Vec<(String, String, String)> = scenario
            .queries
            .iter()
            .map(|q| (q.id.clone(), q.text.clone(), q.peer.clone()))
            .collect();
        let report = AdmissionControl::register_batch(&mut system, &batch, strategy);
        assert!(
            report.errored.is_empty(),
            "{strategy}: {:?}",
            report.errored
        );
        assert_eq!(report.accepted_count() + report.rejected_count(), 100);
        rejected.push(report.rejected_count());
    }
    // Paper: 47 / 35 / 2.
    assert!(
        rejected[0] > rejected[1],
        "data shipping should reject more than query shipping: {rejected:?}"
    );
    assert!(
        rejected[1] > rejected[2],
        "query shipping should reject more than stream sharing: {rejected:?}"
    );
    assert!(
        rejected[2] <= 5,
        "stream sharing rejects almost nothing: {rejected:?}"
    );
}

#[test]
fn sharing_reuses_many_streams_in_scenario1() {
    let scenario = Scenario::scenario1(42);
    let out = scenario.run(Strategy::StreamSharing, false);
    let reused = out
        .registrations
        .iter()
        .filter(|r| r.reused_derived_stream)
        .count();
    // The template value sets are small; a decent share of the 25 queries
    // must land on previously generated streams.
    assert!(
        reused >= 5,
        "only {reused} of 25 queries reused derived streams"
    );
}

#[test]
fn different_seeds_preserve_shapes() {
    for seed in [1u64, 7, 1234] {
        let scenario = Scenario::scenario1(seed);
        let mut totals = Vec::new();
        for strategy in Strategy::ALL {
            let out = scenario.run(strategy, false);
            assert!(
                out.errored.is_empty(),
                "seed {seed}, {strategy}: {:?}",
                out.errored
            );
            totals.push(out.simulate(sim_cfg(&scenario)).metrics.total_edge_bytes());
        }
        assert!(
            totals[0] > totals[2],
            "seed {seed}: sharing must beat data shipping ({totals:?})"
        );
        assert!(
            totals[1] >= totals[2],
            "seed {seed}: sharing must not exceed query shipping ({totals:?})"
        );
    }
}
