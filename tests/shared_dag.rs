//! Intra-peer operator sharing must be an invisible optimization: fusing
//! the flows that consume one stream at a peer into a prefix-sharing
//! operator DAG may only change the *work accounting* (shared prefixes
//! execute once), never any flow's output bytes — with sharing on or off,
//! with flows retiring mid-stream, and across widening re-subscriptions.

use std::collections::BTreeMap;

use proptest::prelude::*;

use data_stream_sharing::network::{
    grid_topology, run, Deployment, FlowId, FlowInput, FlowOp, LiveConfig, LiveRuntime,
    RuntimeMetrics, SimConfig, SourceModel, StreamFlow,
};
use data_stream_sharing::predicate::{Atom, CompOp, PredicateGraph};
use data_stream_sharing::properties::{
    AggOp, AggregationSpec, InputProperties, Operator, Properties, ResultFilter, WindowOutputSpec,
    WindowSpec,
};
use data_stream_sharing::xml::{Decimal, Node, Path};

fn items(n: usize) -> Vec<Node> {
    (0..n)
        .map(|i| {
            Node::elem(
                "photon",
                vec![
                    Node::leaf("en", format!("{}", 1.0 + (i % 10) as f64 / 10.0)),
                    Node::leaf("det_time", i.to_string()),
                ],
            )
        })
        .collect()
}

fn selection_ge(en: &str) -> FlowOp {
    FlowOp::Standard(Operator::Selection(PredicateGraph::from_atoms(&[
        Atom::var_const(
            "en".parse::<Path>().unwrap(),
            CompOp::Ge,
            en.parse::<Decimal>().unwrap(),
        ),
    ])))
}

fn udf(name: &str) -> FlowOp {
    FlowOp::Standard(Operator::Udf {
        name: name.into(),
        params: Vec::new(),
    })
}

/// Sum of `en` over a tumbling count window of `size` items.
fn count_agg(size: i64) -> FlowOp {
    FlowOp::Standard(Operator::Aggregation(AggregationSpec {
        op: AggOp::Sum,
        element: "en".parse().unwrap(),
        window: WindowSpec::count(Decimal::from_int(size), None).unwrap(),
        pre_selection: PredicateGraph::new(),
        result_filter: ResultFilter::none(),
    }))
}

/// A deployment with one source flow SP0→SP1 plus one tap per op chain,
/// all processed (and delivered) at SP1. Returns the tap flow ids.
fn tapped_deployment(chains: &[Vec<FlowOp>]) -> (Deployment, FlowId, Vec<FlowId>) {
    let t = grid_topology(2, 2);
    let (sp0, sp1) = (t.expect_node("SP0"), t.expect_node("SP1"));
    let mut d = Deployment::new();
    let src = d.add_flow(StreamFlow {
        label: "photons".into(),
        input: FlowInput::Source {
            stream: "photons".into(),
        },
        processing_node: sp0,
        ops: Vec::new(),
        route: vec![sp0, sp1],
        properties: Some(Properties::single(InputProperties::original("photons"))),
        retired: false,
    });
    let taps = chains
        .iter()
        .enumerate()
        .map(|(i, ops)| {
            d.add_flow(StreamFlow {
                label: format!("tap{i}"),
                input: FlowInput::Tap { parent: src },
                processing_node: sp1,
                ops: ops.clone(),
                route: vec![sp1],
                properties: None,
                retired: false,
            })
        })
        .collect();
    (d, src, taps)
}

fn batch(
    d: &Deployment,
    n_items: usize,
    shared_ops: bool,
) -> data_stream_sharing::network::SimOutcome {
    let t = grid_topology(2, 2);
    let mut sources = BTreeMap::new();
    sources.insert("photons".to_string(), items(n_items));
    run(
        &t,
        d,
        &sources,
        SimConfig {
            forward_work_per_kb: 0.0,
            shared_ops,
            ..SimConfig::default()
        },
    )
}

// ---------- batch simulator ---------------------------------------------

/// The ISSUE's headline number: sixteen flows running the identical chain
/// fuse into one path, so the peer's operator work drops by ≥3x (here, by
/// construction, exactly 16x — forwarding work is zeroed out).
#[test]
fn sixteen_identical_chains_share_at_least_3x_work() {
    let chain = vec![selection_ge("1.5"), udf("calib")];
    let chains: Vec<Vec<FlowOp>> = (0..16).map(|_| chain.clone()).collect();
    let (d, _, taps) = tapped_deployment(&chains);
    let fused = batch(&d, 100, true);
    let unfused = batch(&d, 100, false);
    assert_eq!(fused.flow_outputs, unfused.flow_outputs);
    for &f in &taps {
        assert_eq!(fused.flow_outputs[f].len(), 50, "σ≥1.5 passes half");
    }
    let sp1 = grid_topology(2, 2).expect_node("SP1");
    assert!(
        unfused.metrics.node_work[sp1] >= 3.0 * fused.metrics.node_work[sp1],
        "16 identical chains must share ≥3x: fused {} vs unfused {}",
        fused.metrics.node_work[sp1],
        unfused.metrics.node_work[sp1]
    );
}

/// Generator for the equivalence property: arbitrary operator chains drawn
/// from a small universe mixing stateless (selection, udf) and stateful
/// (windowed aggregation) operators, so generated flow sets hit every
/// prefix-merge rule (full merge, partial prefix, no merge, empty chain).
fn arb_chain() -> impl Strategy<Value = Vec<FlowOp>> {
    let op = (0usize..5).prop_map(|i| match i {
        0 => selection_ge("1.3"),
        1 => selection_ge("1.6"),
        2 => udf("calib"),
        3 => count_agg(3),
        _ => count_agg(5),
    });
    prop::collection::vec(op, 0..4)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Any set of flows over one stream produces byte-identical per-flow
    /// outputs whether the peer fuses them into a shared DAG or runs each
    /// as its own pipeline.
    #[test]
    fn sharing_never_changes_outputs(chains in prop::collection::vec(arb_chain(), 1..6)) {
        let (d, _, _) = tapped_deployment(&chains);
        let fused = batch(&d, 60, true);
        let unfused = batch(&d, 60, false);
        prop_assert_eq!(&fused.flow_outputs, &unfused.flow_outputs);
        prop_assert_eq!(&fused.metrics.edge_bytes, &unfused.metrics.edge_bytes);
        // Fusing can only remove duplicated work, never add any.
        let eps = 1e-9;
        for (f, u) in fused.metrics.node_work.iter().zip(&unfused.metrics.node_work) {
            prop_assert!(f <= &(u + eps), "fused {f} > unfused {u}");
        }
    }
}

// ---------- live runtime -------------------------------------------------

/// A live runtime over the tapped deployment: 100 items at 100 Hz (1 s of
/// emissions) with a generous horizon so every window drains.
fn live(d: &Deployment, deliveries: BTreeMap<FlowId, String>) -> LiveRuntime {
    let t = grid_topology(2, 2);
    let mut sources = BTreeMap::new();
    sources.insert(
        "photons".to_string(),
        SourceModel::from_frequency(items(100), 100.0),
    );
    let cfg = LiveConfig {
        duration_s: 3.0,
        ..Default::default()
    };
    LiveRuntime::new(t, d, sources, deliveries, cfg).expect("valid runtime")
}

/// Retiring one sharer of a windowed node mid-stream must leave the other
/// sharer's window state (and thus its delivered results) untouched.
#[test]
fn retire_mid_stream_keeps_surviving_sharers_state() {
    let chains = vec![vec![count_agg(4)], vec![count_agg(4)]];
    let (mut d, _, taps) = tapped_deployment(&chains);
    let (a, b) = (taps[0], taps[1]);
    let deliveries: BTreeMap<FlowId, String> =
        [(a, "qa".to_string()), (b, "qb".to_string())].into();

    let mut rt = live(&d, deliveries.clone());
    rt.run_until(250_000); // ~25 of 100 items emitted: mid-window for both
    d.retire(b);
    rt.sync_deployment(&d, deliveries.clone());
    rt.run_until(rt.horizon_us());
    let (metrics, _) = rt.finish();

    // Baseline: the same deployment where b never ran at all.
    let (mut d2, _, _) = tapped_deployment(&chains);
    d2.retire(b);
    let (base, _) = live(&d2, deliveries).finish();

    let qa = &metrics.queries["qa"];
    let qa_base = &base.queries["qa"];
    assert!(qa.delivered > 0, "qa delivered nothing");
    assert_eq!(
        qa.delivered, qa_base.delivered,
        "retiring the co-sharer changed qa's results"
    );
    let qb = &metrics.queries["qb"];
    assert!(
        qb.delivered > 0 && qb.delivered < qa.delivered,
        "qb should deliver until retired and then stop (got {} vs qa {})",
        qb.delivered,
        qa.delivered
    );
}

/// A widening re-subscription appends operators below an unchanged
/// windowed prefix; only the suffix is rebuilt, so the partially filled
/// window at the switch survives and no aggregate result is lost.
#[test]
fn widening_rebuild_keeps_upstream_window_state() {
    let chains = vec![vec![count_agg(4)]];
    let (mut d, _, taps) = tapped_deployment(&chains);
    let a = taps[0];
    let deliveries: BTreeMap<FlowId, String> = [(a, "qa".to_string())].into();

    let mut rt = live(&d, deliveries.clone());
    rt.run_until(250_000); // mid-window: the count-4 window holds a partial
    d.flow_mut(a).ops.push(udf("post")); // widen: suffix grows, prefix unchanged
    rt.sync_deployment(&d, deliveries.clone());
    rt.run_until(rt.horizon_us());
    let (metrics, _) = rt.finish();

    // Baseline: never widened. The UDF is an identity pass-through, so a
    // suffix-only rebuild delivers exactly as many aggregate results.
    // (A count-4 window emits when the *next* item arrives and the live
    // runtime never flushes, so 100 items yield 24 deliveries, not 25.)
    let (d2, _, _) = tapped_deployment(&chains);
    let (base, _) = live(&d2, deliveries).finish();

    assert_eq!(
        base.queries["qa"].delivered, 24,
        "100 items / count-4 windows, close-on-next emission"
    );
    assert_eq!(
        metrics.queries["qa"].delivered, base.queries["qa"].delivered,
        "widening mid-stream lost window state"
    );
}

/// Byte-exact version of the widening guarantee, at the DAG level: a
/// window half-filled before the re-registration must contribute its items
/// to the aggregate emitted after it — the suffix-only rebuild keeps the
/// stateful prefix instance alive.
#[test]
fn flow_dag_widening_is_byte_exact() {
    use data_stream_sharing::network::{build_flow_pipeline, FlowDag};

    let mut dag = FlowDag::new();
    dag.register(0, &[count_agg(4)]);
    let stream = items(9);
    let mut got: Vec<Node> = Vec::new();
    for item in &stream[..2] {
        dag.process_into(item, &mut |_, n| got.push(n.clone()));
    }
    assert!(got.is_empty(), "the count-4 window holds a partial");
    // Widen: the windowed prefix is unchanged, only the suffix grows.
    dag.reregister(0, &[count_agg(4), udf("post")]);
    for item in &stream[2..] {
        dag.process_into(item, &mut |_, n| got.push(n.clone()));
    }

    // Reference: the widened pipeline over the whole stream in one piece.
    let mut reference = build_flow_pipeline(&[count_agg(4), udf("post")]);
    let mut expected: Vec<Node> = Vec::new();
    for item in &stream {
        expected.extend(reference.process(item));
    }
    assert!(!expected.is_empty());
    assert_eq!(
        got, expected,
        "aggregates after the widening must cover the pre-widening items"
    );
}

// ---------- loss-free handoffs (incremental window maintenance) ----------

/// Sum of `en` over an arbitrary window.
fn agg_over(window: WindowSpec) -> FlowOp {
    FlowOp::Standard(Operator::Aggregation(AggregationSpec {
        op: AggOp::Sum,
        element: "en".parse().unwrap(),
        window,
        pre_selection: PredicateGraph::new(),
        result_filter: ResultFilter::none(),
    }))
}

/// Raw window contents over an arbitrary window.
fn window_out(window: WindowSpec) -> FlowOp {
    FlowOp::Standard(Operator::WindowOutput(WindowOutputSpec {
        window,
        pre_selection: PredicateGraph::new(),
    }))
}

/// A compatible window pair one lattice step apart: same extent `Δ`, same
/// kind/reference, and the new step coarsens the old one by an integer
/// factor (`µ → k·µ`, with `k = 1` the identical-spec case) — exactly the
/// pairs a migrating re-registration may adopt instead of dropping.
fn arb_window_pair() -> impl Strategy<Value = (WindowSpec, WindowSpec)> {
    (any::<bool>(), 1i64..4, 1i64..4, 1i64..4).prop_map(|(diff, mu, k, m)| {
        let size = Decimal::from_int(m * k * mu);
        let make = |step: i64| {
            if diff {
                WindowSpec::diff(
                    "det_time".parse().unwrap(),
                    size,
                    Some(Decimal::from_int(step)),
                )
                .unwrap()
            } else {
                WindowSpec::count(size, Some(Decimal::from_int(step))).unwrap()
            }
        };
        (make(mu), make(k * mu))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Delta migration ≡ full rebuild with replay: re-registering a
    /// stateful chain mid-stream with migration, onto a compatible window
    /// spec behind a spliced-in restore selection (keep-prefix empty, so
    /// the *whole* chain rebuilds), emits byte-identical results — suffix
    /// outputs and final flush alike — to a chain that ran the new
    /// operator list over the entire stream from the start. And no
    /// exported snapshot may be dropped: the pair is compatible by
    /// construction.
    #[test]
    fn migrating_rebuild_equals_continuous_run(
        pair in arb_window_pair(),
        aggregate in any::<bool>(),
        n in 6usize..40,
        split_seed in 0usize..1000,
    ) {
        let (fine, coarse) = pair;
        let stream = items(n);
        let split = split_seed % n;
        let old_chain = vec![if aggregate { agg_over(fine) } else { window_out(fine) }];
        // The widened chain splices a pass-everything restore selection in
        // front (every `en` is ≥ 1.0), so nothing merges and the stateful
        // operator is rebuilt from scratch — state survives only by
        // migration.
        let new_chain = vec![
            selection_ge("0.5"),
            if aggregate { agg_over(coarse) } else { window_out(coarse) },
        ];

        let mut dag = data_stream_sharing::network::FlowDag::new();
        dag.register(0, &old_chain);
        for item in &stream[..split] {
            dag.process_into(item, &mut |_, _| {}); // fine-step outputs: not comparable
        }
        let report = dag.reregister_migrating(0, &new_chain);
        prop_assert_eq!(
            report.ops_dropped, 0,
            "compatible window pair must be adopted: {:?}", report
        );
        let mut got = Vec::new();
        for item in &stream[split..] {
            dag.process_into(item, &mut |_, node| got.push(node.clone()));
        }
        let mut got_flush = Vec::new();
        dag.flush_into(&mut |_, node| got_flush.push(node.clone()));

        // Reference: the new chain over the whole stream in one piece.
        let mut reference = data_stream_sharing::network::FlowDag::new();
        reference.register(0, &new_chain);
        let mut expect = Vec::new();
        for (i, item) in stream.iter().enumerate() {
            reference.process_into(item, &mut |_, node| {
                if i >= split {
                    expect.push(node.clone());
                }
            });
        }
        let mut expect_flush = Vec::new();
        reference.flush_into(&mut |_, node| expect_flush.push(node.clone()));

        prop_assert_eq!(&got, &expect, "suffix outputs diverge after migration");
        prop_assert_eq!(&got_flush, &expect_flush, "final window state diverges");
    }
}

/// Like [`live`] but recording every delivered item for byte comparison.
fn live_recording(d: &Deployment, deliveries: BTreeMap<FlowId, String>) -> LiveRuntime {
    let t = grid_topology(2, 2);
    let mut sources = BTreeMap::new();
    sources.insert(
        "photons".to_string(),
        SourceModel::from_frequency(items(100), 100.0),
    );
    let cfg = LiveConfig {
        duration_s: 3.0,
        record_deliveries: true,
        ..Default::default()
    };
    LiveRuntime::new(t, d, sources, deliveries, cfg).expect("valid runtime")
}

/// Patches the single tap's chain mid-stream the way a widening does —
/// a restore selection spliced in at position 0, forcing a full rebuild —
/// optionally marked as a planned handoff, and returns the runtime's
/// metrics plus qa's recorded deliveries.
fn run_widening_patch(handoff: bool) -> (RuntimeMetrics, Vec<(u64, Node)>) {
    let chains = vec![vec![count_agg(4)]];
    let (mut d, _, taps) = tapped_deployment(&chains);
    let a = taps[0];
    let deliveries: BTreeMap<FlowId, String> = [(a, "qa".to_string())].into();
    let mut rt = live_recording(&d, deliveries.clone());
    rt.run_until(230_000); // 23 of 100 items: the open count-4 window holds 3
    d.flow_mut(a).ops.insert(0, selection_ge("0.5")); // passes everything
    d.set_handoff(a, handoff);
    rt.sync_deployment(&d, deliveries);
    rt.run_until(rt.horizon_us());
    let delivered = rt.take_delivered_items().remove("qa").unwrap_or_default();
    let (metrics, _) = rt.finish();
    (metrics, delivered)
}

/// The live-runtime widening regression: a mid-stream in-place rewrite
/// that rebuilds the whole chain delivers byte-exactly what a deployment
/// that always ran the widened chain would — *only* because the planner
/// marked it as a loss-free handoff and the open window migrated. The
/// unmarked control run drops the partial window and diverges, proving
/// the handoff (not luck) carries the state.
#[test]
fn planned_handoff_delivers_byte_exact_results() {
    // Baseline: the widened chain from the very start, never rewritten.
    let chains = vec![vec![selection_ge("0.5"), count_agg(4)]];
    let (d, _, taps) = tapped_deployment(&chains);
    let deliveries: BTreeMap<FlowId, String> = [(taps[0], "qa".to_string())].into();
    let mut rt = live_recording(&d, deliveries);
    rt.run_until(rt.horizon_us());
    let baseline = rt.take_delivered_items().remove("qa").unwrap_or_default();
    assert!(!baseline.is_empty(), "baseline delivered nothing");

    let (metrics, delivered) = run_widening_patch(true);
    assert_eq!(metrics.windows_migrated, 1, "the count-window must migrate");
    assert_eq!(metrics.windows_dropped, 0);
    assert!(
        metrics.widen_delta_items > 0,
        "the partial window held items to move"
    );
    assert_eq!(
        delivered, baseline,
        "handoff re-subscription changed qa's delivered bytes"
    );

    let (metrics, delivered) = run_widening_patch(false);
    assert_eq!(metrics.windows_migrated, 0, "no handoff was planned");
    assert_ne!(
        delivered, baseline,
        "control run without the handoff mark should drop the partial \
         window and diverge — if it matches, this test lost its teeth"
    );
}

/// The live runtime's per-operator counters expose the sharing win.
#[test]
fn live_metrics_report_shared_work() {
    let chains = vec![vec![selection_ge("1.5")], vec![selection_ge("1.5")]];
    let (d, _, taps) = tapped_deployment(&chains);
    let deliveries: BTreeMap<FlowId, String> =
        [(taps[0], "qa".to_string()), (taps[1], "qb".to_string())].into();
    let (metrics, _) = live(&d, deliveries).finish();
    assert_eq!(metrics.queries["qa"].delivered, 50);
    assert_eq!(metrics.queries["qb"].delivered, 50);
    let sp1 = grid_topology(2, 2).expect_node("SP1");
    let shared = metrics.node_ops[sp1]
        .iter()
        .find(|o| o.name == "σ")
        .expect("SP1 runs the shared selection");
    assert_eq!(shared.sharers, 2, "both flows share one selection node");
    assert_eq!(shared.items_in, 100);
    assert!(
        metrics.shared_work_saved() > 0.0,
        "sharing saved no work: {:?}",
        metrics.node_ops[sp1]
    );
}
