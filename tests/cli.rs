//! Integration tests for the `dss` command-line front end.

use std::io::Write;
use std::process::{Command, Stdio};

fn dss() -> Command {
    Command::new(env!("CARGO_BIN_EXE_dss"))
}

#[test]
fn no_args_prints_usage_and_exits_2() {
    let out = dss().output().expect("runs");
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage: dss"));
}

#[test]
fn unknown_subcommand_exits_2_with_usage() {
    let out = dss().arg("frobnicate").output().expect("runs");
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("error: unknown command \"frobnicate\""));
    assert!(stderr.contains("usage: dss"));
}

#[test]
fn malformed_serve_args_exit_2_on_stderr() {
    // Missing topology.
    let out = dss().arg("serve").output().expect("runs");
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("serve requires a topology"));

    // Unknown topology.
    let out = dss()
        .args(["serve", "figure-9", "--peer", "SP0"])
        .output()
        .expect("runs");
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown topology"));

    // Missing --peer.
    let out = dss().args(["serve", "example"]).output().expect("runs");
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("--peer"));

    // Non-numeric port base.
    let out = dss()
        .args(["serve", "example", "--peer", "SP0", "--port-base", "teapot"])
        .output()
        .expect("runs");
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("--port-base"));

    // Stray argument.
    let out = dss()
        .args(["serve", "example", "--peer", "SP0", "--frob"])
        .output()
        .expect("runs");
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("unexpected serve argument"));
}

#[test]
fn serving_a_peer_not_in_the_topology_fails_cleanly() {
    let out = dss()
        .args(["serve", "example", "--peer", "SP99", "--port-base", "1"])
        .output()
        .expect("runs");
    assert_eq!(out.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&out.stderr).contains("not a super-peer"));
}

#[test]
fn malformed_client_args_exit_2_on_stderr() {
    // Missing verb.
    let out = dss().arg("client").output().expect("runs");
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("client requires a verb"));

    // Missing address.
    let out = dss().args(["client", "metrics"]).output().expect("runs");
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("server address"));

    // Unknown verb.
    let out = dss()
        .args(["client", "teleport", "127.0.0.1:1"])
        .output()
        .expect("runs");
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown client verb"));

    // subscribe without a query id.
    let out = dss()
        .args(["client", "subscribe", "127.0.0.1:1"])
        .output()
        .expect("runs");
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("query id"));
}

#[test]
fn queries_prints_all_four_paper_queries() {
    let out = dss().arg("queries").output().expect("runs");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    for name in ["Q1", "Q2", "Q3", "Q4"] {
        assert!(
            stdout.contains(&format!("--- {name} ---")),
            "missing {name}"
        );
    }
    assert!(stdout.contains("stream(\"photons\")"));
}

#[test]
fn demo_reproduces_figure2_sharing() {
    let out = dss().arg("demo").output().expect("runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("Q2 at P2 (shares an existing stream)"));
    assert!(stdout.contains("reuse flow Q1/photons at SP5"));
    assert!(stdout.contains("total network traffic:"));
}

#[test]
fn plan_from_stdin_with_sharing_context() {
    let mut child = dss()
        .args(["plan", "-", "--at", "P2", "--after", "q1"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawns");
    child
        .stdin
        .as_mut()
        .unwrap()
        .write_all(dss_wxquery::queries::Q2.as_bytes())
        .unwrap();
    let out = child.wait_with_output().expect("finishes");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("shares an existing stream"));
    assert!(stdout.contains("reuse flow q1/photons at SP5"));
}

#[test]
fn check_reports_compile_errors() {
    let mut child = dss()
        .args(["check", "-"])
        .stdin(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawns");
    child
        .stdin
        .as_mut()
        .unwrap()
        .write_all(b"not a query")
        .unwrap();
    let out = child.wait_with_output().expect("finishes");
    assert_eq!(out.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&out.stderr).contains("syntax error"));
}

#[test]
fn plan_rejects_bad_strategy_and_peer() {
    let out = dss()
        .args(["plan", "/nonexistent.xq", "--strategy", "teleport"])
        .output()
        .expect("runs");
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown strategy"));

    let mut child = dss()
        .args(["plan", "-", "--at", "P99"])
        .stdin(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawns");
    child
        .stdin
        .as_mut()
        .unwrap()
        .write_all(dss_wxquery::queries::Q1.as_bytes())
        .unwrap();
    let out = child.wait_with_output().expect("finishes");
    assert_eq!(out.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown peer"));
}
