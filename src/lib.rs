//! # Data Stream Sharing
//!
//! A from-scratch Rust reproduction of *"Data Stream Sharing"* (Richard
//! Kuntschke and Alfons Kemper, EDBT 2006): answering newly registered
//! continuous queries over XML data streams in super-peer P2P networks by
//! reusing — *sharing* — data streams that were generated for previously
//! registered subscriptions.
//!
//! This umbrella crate re-exports the workspace's public API:
//!
//! * [`xml`] — streaming XML substrate (tokenizer, pull parser, trees,
//!   child-axis paths, serializer, schemas, exact decimals).
//! * [`wxquery`] — the WXQuery subscription language of the paper's
//!   Definition 2.1 (lexer, parser, AST, semantic analysis, compilation).
//! * [`predicate`] — conjunctive predicate graphs with satisfiability,
//!   minimization, and implication tests.
//! * [`properties`] — the properties representation of subscriptions and
//!   streams, plus `MatchProperties` / `MatchPredicates` /
//!   `MatchAggregations`.
//! * [`engine`] — executable stream operators (selection, projection,
//!   window aggregation, re-aggregation, restructuring).
//! * [`network`] — the super-peer network simulator (topology, routing,
//!   stream registry, traffic/load metrics).
//! * [`core`] — the cost model, plan generation, the `Subscribe` algorithm,
//!   the three registration strategies, and admission control.
//! * [`rass`] — a synthetic ROSAT-All-Sky-Survey photon stream generator
//!   and the paper's two benchmark scenarios.
//! * [`proto`] — the length-prefixed, CRC-framed binary wire protocol of
//!   the networked deployment mode (`dss serve`).
//! * [`server`] — one-process-per-super-peer TCP deployment: replicated
//!   registration control plane, byte-exact replay data plane, client
//!   library, and the loopback orchestrator.
//!
//! ## Quickstart
//!
//! ```
//! use data_stream_sharing::prelude::*;
//!
//! // The paper's example network (Figures 1 and 2) with the photons stream
//! // registered at super-peer SP4.
//! let mut system = dss_rass::scenario::example_network();
//!
//! // Register the paper's Query 1 (the Vela supernova remnant region)
//! // at peer SP1, using the stream-sharing strategy.
//! let q1 = r#"
//! <photons>
//! { for $p in stream("photons")/photons/photon
//!   where $p/coord/cel/ra >= 120.0 and $p/coord/cel/ra <= 138.0
//!     and $p/coord/cel/dec >= -49.0 and $p/coord/cel/dec <= -40.0
//!   return <vela> { $p/coord/cel/ra } { $p/coord/cel/dec }
//!          { $p/phc } { $p/en } { $p/det_time } </vela> }
//! </photons>"#;
//! let reg = system
//!     .register_query("q1", q1, "SP1", Strategy::StreamSharing)
//!     .expect("query 1 registers");
//! assert!(reg.plan.num_routed_streams() >= 1);
//! ```

pub use dss_core as core;
pub use dss_engine as engine;
pub use dss_network as network;
pub use dss_predicate as predicate;
pub use dss_properties as properties;
pub use dss_proto as proto;
pub use dss_rass as rass;
pub use dss_server as server;
pub use dss_wxquery as wxquery;
pub use dss_xml as xml;

/// Convenient glob-import surface for examples and downstream users.
pub mod prelude {
    pub use dss_core::admission::AdmissionControl;
    pub use dss_core::strategy::Strategy;
    pub use dss_core::system::StreamGlobe;
    pub use dss_network::topology::Topology;
    pub use dss_properties::properties::Properties;
    pub use dss_rass;
    pub use dss_wxquery::parse_query;
    pub use dss_xml::{Decimal, Node, Path};
}
