//! `dss` — command-line front end to the data-stream-sharing system.
//!
//! ```text
//! dss demo                          run the Figures-1/2 narrative
//! dss queries                       print the paper's example queries
//! dss plan <file|-> [options]       plan one WXQuery subscription on the
//!                                   example network and explain the plan
//! dss check <file|->                parse/compile a subscription and dump
//!                                   its properties
//! ```
//!
//! Options for `plan`:
//!   --at <peer>          registering peer (default P1)
//!   --strategy <s>       data-shipping | query-shipping | stream-sharing
//!   --after <q1,q3,...>  pre-register paper queries first (enables sharing)

use std::io::Read;
use std::process::ExitCode;

use data_stream_sharing::core::Strategy;
use data_stream_sharing::wxquery::{compile_query, queries};
use dss_rass::scenario::example_network;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("demo") => demo(),
        Some("queries") => {
            for (name, text) in queries::ALL {
                println!("--- {name} ---{text}");
            }
            ExitCode::SUCCESS
        }
        Some("plan") => plan(&args[1..]),
        Some("check") => check(&args[1..]),
        _ => {
            eprintln!(
                "usage: dss <command>\n\n\
                 commands:\n  \
                 demo                         run the paper's Figures-1/2 narrative\n  \
                 queries                      print the paper's example queries\n  \
                 plan <file|-> [options]      plan a WXQuery subscription\n  \
                 check <file|->               compile a subscription, dump properties\n\n\
                 plan options:\n  \
                 --at <peer>                  registering peer (default P1)\n  \
                 --strategy <s>               data-shipping | query-shipping | stream-sharing\n  \
                 --after <q1,q2,...>          pre-register paper queries (enables sharing)"
            );
            ExitCode::from(2)
        }
    }
}

fn read_query_arg(arg: Option<&String>) -> Result<String, String> {
    match arg.map(String::as_str) {
        Some("-") => {
            let mut buf = String::new();
            std::io::stdin()
                .read_to_string(&mut buf)
                .map_err(|e| format!("cannot read stdin: {e}"))?;
            Ok(buf)
        }
        Some(path) => {
            std::fs::read_to_string(path).map_err(|e| format!("cannot read {path:?}: {e}"))
        }
        None => Err("missing query file argument (use '-' for stdin)".into()),
    }
}

fn parse_strategy(s: &str) -> Result<Strategy, String> {
    match s {
        "data-shipping" | "ds" => Ok(Strategy::DataShipping),
        "query-shipping" | "qs" => Ok(Strategy::QueryShipping),
        "stream-sharing" | "ss" => Ok(Strategy::StreamSharing),
        other => Err(format!(
            "unknown strategy {other:?} (expected data-shipping, query-shipping, or \
             stream-sharing)"
        )),
    }
}

fn demo() -> ExitCode {
    let mut system = example_network();
    for (name, text, peer) in [
        ("Q1", queries::Q1, "P1"),
        ("Q2", queries::Q2, "P2"),
        ("Q3", queries::Q3, "P3"),
        ("Q4", queries::Q4, "P4"),
    ] {
        match system.register_query(name, text, peer, Strategy::StreamSharing) {
            Ok(reg) => {
                println!(
                    "{name} at {peer}{}:",
                    if reg.reused_derived_stream {
                        " (shares an existing stream)"
                    } else {
                        ""
                    }
                );
                print!("{}", reg.plan.describe(system.state()));
            }
            Err(e) => {
                eprintln!("{name}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    let sim = system.run_simulation(Default::default());
    println!(
        "total network traffic: {} bytes",
        sim.metrics.total_edge_bytes()
    );
    ExitCode::SUCCESS
}

fn plan(args: &[String]) -> ExitCode {
    let mut at = "P1".to_string();
    let mut strategy = Strategy::StreamSharing;
    let mut after: Vec<String> = Vec::new();
    let mut query_arg: Option<String> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--at" => match it.next() {
                Some(p) => at = p.clone(),
                None => return usage_error("--at requires a peer name"),
            },
            "--strategy" => match it.next().map(|s| parse_strategy(s)) {
                Some(Ok(s)) => strategy = s,
                Some(Err(e)) => return usage_error(&e),
                None => return usage_error("--strategy requires a value"),
            },
            "--after" => match it.next() {
                Some(list) => after = list.split(',').map(str::to_string).collect(),
                None => return usage_error("--after requires a comma-separated list"),
            },
            _ if query_arg.is_none() => query_arg = Some(a.clone()),
            other => return usage_error(&format!("unexpected argument {other:?}")),
        }
    }
    let text = match read_query_arg(query_arg.as_ref()) {
        Ok(t) => t,
        Err(e) => return usage_error(&e),
    };

    let mut system = example_network();
    for q in &after {
        let (name, text, peer) = match q.to_ascii_lowercase().as_str() {
            "q1" => ("q1", queries::Q1, "P1"),
            "q2" => ("q2", queries::Q2, "P2"),
            "q3" => ("q3", queries::Q3, "P3"),
            "q4" => ("q4", queries::Q4, "P4"),
            other => return usage_error(&format!("--after only knows q1..q4, got {other:?}")),
        };
        if let Err(e) = system.register_query(name, text, peer, Strategy::StreamSharing) {
            eprintln!("pre-registering {name} failed: {e}");
            return ExitCode::FAILURE;
        }
    }
    match system.register_query("user-query", &text, &at, strategy) {
        Ok(reg) => {
            println!(
                "plan ({strategy}, registered at {at}, {:?}){}:",
                reg.elapsed,
                if reg.reused_derived_stream {
                    ", shares an existing stream"
                } else {
                    ""
                }
            );
            print!("{}", reg.plan.describe(system.state()));
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn check(args: &[String]) -> ExitCode {
    let text = match read_query_arg(args.first()) {
        Ok(t) => t,
        Err(e) => return usage_error(&e),
    };
    match compile_query(&text) {
        Ok(q) => {
            println!("input stream : {}", q.input_stream);
            println!("stream root  : {} / item {}", q.stream_root, q.item_name);
            println!("result root  : {}", q.result_root);
            println!("properties   : {}", q.properties);
            if let Some(agg) = &q.aggregation {
                println!("aggregation  : {agg}");
            }
            if let Some(w) = &q.window_output {
                println!("window output: {w}");
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn usage_error(msg: &str) -> ExitCode {
    eprintln!("error: {msg}");
    ExitCode::from(2)
}
