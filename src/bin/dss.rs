//! `dss` — command-line front end to the data-stream-sharing system.
//!
//! ```text
//! dss demo                          run the Figures-1/2 narrative
//! dss queries                       print the paper's example queries
//! dss plan <file|-> [options]       plan one WXQuery subscription on the
//!                                   example network and explain the plan
//! dss explain <file|-> [options]    like `plan`, but print the recorded
//!                                   plan-search trace: peers visited, every
//!                                   candidate stream with its C(P) breakdown
//!                                   (traffic + load) or rejection reason
//! dss check <file|->                parse/compile a subscription and dump
//!                                   its properties
//! dss serve <topology> --peer <SPn> serve one super-peer of a networked
//!                                   deployment over TCP
//! dss client <verb> <addr> ...      drive a deployed fleet (subscribe,
//!                                   run, metrics, shutdown)
//! ```
//!
//! Options for `plan` and `explain`:
//!   --at <peer>          registering peer (default P1)
//!   --strategy <s>       data-shipping | query-shipping | stream-sharing
//!   --after <q1,q3,...>  pre-register paper queries first (enables sharing)

use std::io::Read;
use std::process::ExitCode;
use std::time::Duration;

use data_stream_sharing::core::Strategy;
use data_stream_sharing::server::{self, Client, PeerOptions, ServeSpec};
use data_stream_sharing::wxquery::{compile_query, queries};
use dss_rass::scenario::example_network;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("demo") => demo(),
        Some("queries") => {
            for (name, text) in queries::ALL {
                println!("--- {name} ---{text}");
            }
            ExitCode::SUCCESS
        }
        Some("plan") => plan(&args[1..]),
        Some("explain") => explain(&args[1..]),
        Some("check") => check(&args[1..]),
        Some("serve") => serve(&args[1..]),
        Some("client") => client(&args[1..]),
        Some(other) => {
            eprintln!("error: unknown command {other:?}");
            usage();
            ExitCode::from(2)
        }
        None => {
            usage();
            ExitCode::from(2)
        }
    }
}

fn usage() {
    eprintln!(
        "usage: dss <command>\n\n\
         commands:\n  \
         demo                         run the paper's Figures-1/2 narrative\n  \
         queries                      print the paper's example queries\n  \
         plan <file|-> [options]      plan a WXQuery subscription\n  \
         explain <file|-> [options]   plan + print the plan-search trace\n  \
         check <file|->               compile a subscription, dump properties\n  \
         serve <topology> --peer <SPn> [serve options]\n                               \
         serve one super-peer process of a networked deployment\n  \
         client <verb> <addr> [...]   drive a deployed fleet\n\n\
         plan/explain options:\n  \
         --at <peer>                  registering peer (default P1)\n  \
         --strategy <s>               data-shipping | query-shipping | stream-sharing\n  \
         --after <q1,q2,...>          pre-register paper queries (enables sharing)\n\n\
         serve options:\n  \
         --host <addr>                bind/dial interface (default 127.0.0.1)\n  \
         --port-base <n>              first listen port (default 7400; process i uses base+i)\n  \
         --mailbox-capacity <n>       bounded mailbox slots per hosted node (default 1024)\n  \
         --metrics-out <path>         write the final telemetry snapshot here on shutdown\n\n\
         client verbs:\n  \
         subscribe <addr> <id> <file|-> [--at <peer>] [--strategy <s>]\n                               \
         register a query with the coordinator\n  \
         run <addr>                   start a replay run, stream results to stdout\n  \
         metrics <addr>               pull a telemetry snapshot (JSON) from a peer\n  \
         shutdown <addr>              cleanly stop the fleet via the coordinator"
    );
}

/// `dss serve <topology> --peer <SPn> [options]`.
fn serve(args: &[String]) -> ExitCode {
    let Some(topology) = args.first() else {
        return usage_error("serve requires a topology (\"example\" or \"scenario1\")");
    };
    let mut spec = match ServeSpec::new(topology) {
        Ok(s) => s,
        Err(e) => return usage_error(&e),
    };
    let mut peer: Option<String> = None;
    let mut opts_tail = PeerTail::default();
    let mut it = args[1..].iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--peer" => match it.next() {
                Some(p) => peer = Some(p.clone()),
                None => return usage_error("--peer requires a super-peer name"),
            },
            "--host" => match it.next() {
                Some(h) => spec.host = h.clone(),
                None => return usage_error("--host requires an address"),
            },
            "--port-base" => match it.next().map(|v| v.parse::<u16>()) {
                Some(Ok(p)) => spec.port_base = p,
                Some(Err(_)) => return usage_error("--port-base requires a port number"),
                None => return usage_error("--port-base requires a port number"),
            },
            "--mailbox-capacity" => match it.next().map(|v| v.parse::<usize>()) {
                Some(Ok(n)) if n > 0 => opts_tail.mailbox_capacity = n,
                _ => return usage_error("--mailbox-capacity requires a positive integer"),
            },
            "--metrics-out" => match it.next() {
                Some(p) => opts_tail.metrics_out = Some(p.into()),
                None => return usage_error("--metrics-out requires a path"),
            },
            other => return usage_error(&format!("unexpected serve argument {other:?}")),
        }
    }
    let Some(peer) = peer else {
        return usage_error("serve requires --peer <SPn>");
    };
    let mut opts = PeerOptions::new(spec, peer);
    opts.mailbox_capacity = opts_tail.mailbox_capacity;
    opts.metrics_out = opts_tail.metrics_out;
    match server::serve(opts) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

struct PeerTail {
    mailbox_capacity: usize,
    metrics_out: Option<std::path::PathBuf>,
}

impl Default for PeerTail {
    fn default() -> PeerTail {
        PeerTail {
            mailbox_capacity: 1024,
            metrics_out: None,
        }
    }
}

const CLIENT_TIMEOUT: Duration = Duration::from_secs(30);

/// `dss client <verb> <addr> ...`.
fn client(args: &[String]) -> ExitCode {
    let Some(verb) = args.first() else {
        return usage_error("client requires a verb (subscribe, run, metrics, shutdown)");
    };
    let Some(addr) = args.get(1) else {
        return usage_error("client requires a server address (host:port)");
    };
    let connect = || Client::connect(addr, "dss-cli", CLIENT_TIMEOUT);
    match verb.as_str() {
        "subscribe" => {
            let Some(id) = args.get(2) else {
                return usage_error("client subscribe requires a query id");
            };
            let text = match read_query_arg(args.get(3)) {
                Ok(t) => t,
                Err(e) => return usage_error(&e),
            };
            let mut at = "P1".to_string();
            let mut strategy = Strategy::StreamSharing;
            let mut it = args[4..].iter();
            while let Some(a) = it.next() {
                match a.as_str() {
                    "--at" => match it.next() {
                        Some(p) => at = p.clone(),
                        None => return usage_error("--at requires a peer name"),
                    },
                    "--strategy" => match it.next().map(|s| parse_strategy(s)) {
                        Some(Ok(s)) => strategy = s,
                        Some(Err(e)) => return usage_error(&e),
                        None => return usage_error("--strategy requires a value"),
                    },
                    other => {
                        return usage_error(&format!("unexpected subscribe argument {other:?}"))
                    }
                }
            }
            let mut c = match connect() {
                Ok(c) => c,
                Err(e) => return client_error(e),
            };
            match c.subscribe(id, &text, &at, server::to_wire_strategy(strategy)) {
                Ok(reply) => {
                    println!(
                        "subscribed {} at {at} (delivery flow {}{})",
                        reply.id,
                        reply.delivery_flow,
                        if reply.reused {
                            ", shares an existing stream"
                        } else {
                            ""
                        }
                    );
                    print!("{}", reply.plan);
                    c.goodbye();
                    ExitCode::SUCCESS
                }
                Err(e) => client_error(e),
            }
        }
        "run" => {
            let mut c = match connect() {
                Ok(c) => c,
                Err(e) => return client_error(e),
            };
            match c.run_and_collect(Duration::from_secs(600)) {
                Ok(out) => {
                    for (query, items) in &out.results {
                        for item in items {
                            println!(
                                "{query}\t{}",
                                data_stream_sharing::xml::writer::node_to_string(item)
                            );
                        }
                    }
                    eprintln!("run complete: {} items delivered", out.delivered);
                    c.goodbye();
                    ExitCode::SUCCESS
                }
                Err(e) => client_error(e),
            }
        }
        "metrics" => {
            let mut c = match connect() {
                Ok(c) => c,
                Err(e) => return client_error(e),
            };
            match c.metrics() {
                Ok(json) => {
                    println!("{json}");
                    c.goodbye();
                    ExitCode::SUCCESS
                }
                Err(e) => client_error(e),
            }
        }
        "shutdown" => {
            let mut c = match connect() {
                Ok(c) => c,
                Err(e) => return client_error(e),
            };
            match c.shutdown_fleet(Duration::from_secs(600)) {
                Ok(()) => {
                    eprintln!("fleet stopped");
                    c.goodbye();
                    ExitCode::SUCCESS
                }
                Err(e) => client_error(e),
            }
        }
        other => usage_error(&format!("unknown client verb {other:?}")),
    }
}

fn client_error(e: data_stream_sharing::server::ServerError) -> ExitCode {
    eprintln!("error: {e}");
    ExitCode::FAILURE
}

fn read_query_arg(arg: Option<&String>) -> Result<String, String> {
    match arg.map(String::as_str) {
        Some("-") => {
            let mut buf = String::new();
            std::io::stdin()
                .read_to_string(&mut buf)
                .map_err(|e| format!("cannot read stdin: {e}"))?;
            Ok(buf)
        }
        Some(path) => {
            std::fs::read_to_string(path).map_err(|e| format!("cannot read {path:?}: {e}"))
        }
        None => Err("missing query file argument (use '-' for stdin)".into()),
    }
}

fn parse_strategy(s: &str) -> Result<Strategy, String> {
    match s {
        "data-shipping" | "ds" => Ok(Strategy::DataShipping),
        "query-shipping" | "qs" => Ok(Strategy::QueryShipping),
        "stream-sharing" | "ss" => Ok(Strategy::StreamSharing),
        other => Err(format!(
            "unknown strategy {other:?} (expected data-shipping, query-shipping, or \
             stream-sharing)"
        )),
    }
}

fn demo() -> ExitCode {
    let mut system = example_network();
    for (name, text, peer) in [
        ("Q1", queries::Q1, "P1"),
        ("Q2", queries::Q2, "P2"),
        ("Q3", queries::Q3, "P3"),
        ("Q4", queries::Q4, "P4"),
    ] {
        match system.register_query(name, text, peer, Strategy::StreamSharing) {
            Ok(reg) => {
                println!(
                    "{name} at {peer}{}:",
                    if reg.reused_derived_stream {
                        " (shares an existing stream)"
                    } else {
                        ""
                    }
                );
                print!("{}", reg.plan.describe(system.state()));
            }
            Err(e) => {
                eprintln!("{name}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    let sim = system.run_simulation(Default::default());
    println!(
        "total network traffic: {} bytes",
        sim.metrics.total_edge_bytes()
    );
    ExitCode::SUCCESS
}

/// Parsed arguments shared by `plan` and `explain`.
struct PlanArgs {
    at: String,
    strategy: Strategy,
    after: Vec<String>,
    text: String,
}

fn parse_plan_args(args: &[String]) -> Result<PlanArgs, String> {
    let mut at = "P1".to_string();
    let mut strategy = Strategy::StreamSharing;
    let mut after: Vec<String> = Vec::new();
    let mut query_arg: Option<String> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--at" => match it.next() {
                Some(p) => at = p.clone(),
                None => return Err("--at requires a peer name".into()),
            },
            "--strategy" => match it.next().map(|s| parse_strategy(s)) {
                Some(Ok(s)) => strategy = s,
                Some(Err(e)) => return Err(e),
                None => return Err("--strategy requires a value".into()),
            },
            "--after" => match it.next() {
                Some(list) => after = list.split(',').map(str::to_string).collect(),
                None => return Err("--after requires a comma-separated list".into()),
            },
            _ if query_arg.is_none() => query_arg = Some(a.clone()),
            other => return Err(format!("unexpected argument {other:?}")),
        }
    }
    let text = read_query_arg(query_arg.as_ref())?;
    Ok(PlanArgs {
        at,
        strategy,
        after,
        text,
    })
}

/// Builds the example network and pre-registers the `--after` queries.
fn prepared_network(after: &[String]) -> Result<data_stream_sharing::core::StreamGlobe, ExitCode> {
    let mut system = example_network();
    for q in after {
        let (name, text, peer) = match q.to_ascii_lowercase().as_str() {
            "q1" => ("q1", queries::Q1, "P1"),
            "q2" => ("q2", queries::Q2, "P2"),
            "q3" => ("q3", queries::Q3, "P3"),
            "q4" => ("q4", queries::Q4, "P4"),
            other => {
                return Err(usage_error(&format!(
                    "--after only knows q1..q4, got {other:?}"
                )))
            }
        };
        if let Err(e) = system.register_query(name, text, peer, Strategy::StreamSharing) {
            eprintln!("pre-registering {name} failed: {e}");
            return Err(ExitCode::FAILURE);
        }
    }
    Ok(system)
}

fn plan(args: &[String]) -> ExitCode {
    let PlanArgs {
        at,
        strategy,
        after,
        text,
    } = match parse_plan_args(args) {
        Ok(p) => p,
        Err(e) => return usage_error(&e),
    };
    let mut system = match prepared_network(&after) {
        Ok(s) => s,
        Err(code) => return code,
    };
    match system.register_query("user-query", &text, &at, strategy) {
        Ok(reg) => {
            println!(
                "plan ({strategy}, registered at {at}, {:?}){}:",
                reg.elapsed,
                if reg.reused_derived_stream {
                    ", shares an existing stream"
                } else {
                    ""
                }
            );
            print!("{}", reg.plan.describe(system.state()));
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

/// `dss explain` — plan a query with tracing enabled and print the recorded
/// search tree: every peer the Subscribe BFS dequeued, every candidate
/// stream with its cost split into the traffic and load terms (or the name
/// of the check that rejected it), and the per-input winners, whose costs
/// must sum exactly to the plan's C(P).
fn explain(args: &[String]) -> ExitCode {
    let PlanArgs {
        at,
        strategy,
        after,
        text,
    } = match parse_plan_args(args) {
        Ok(p) => p,
        Err(e) => return usage_error(&e),
    };
    // Pre-registrations happen before the session opens so the trace holds
    // exactly one registration: the user's.
    let mut system = match prepared_network(&after) {
        Ok(s) => s,
        Err(code) => return code,
    };
    let session = dss_telemetry::session();
    let result = system.register_query("user-query", &text, &at, strategy);
    let snap = session.snapshot();
    drop(session);

    let Some(reg) = snap.spans_named("register_query").last() else {
        eprintln!(
            "no trace recorded — this binary was built with --no-default-features, \
             which compiles the telemetry layer out; rebuild with default features"
        );
        return ExitCode::FAILURE;
    };

    println!(
        "register user-query ({strategy}) at {at} — {}",
        vstr(reg.field("outcome"))
    );
    let mut parts_sum = 0.0f64;
    for input in reg.children_named("subscribe_input") {
        let visits = input.children_named("visit").count();
        let candidates = input.children_named("candidate").count();
        println!(
            "  input {:?}: source at {}, subscriber super-peer {}; \
             {visits} peers visited, {candidates} candidates",
            vstr(input.field("stream")),
            vstr(input.field("v_b")),
            vstr(input.field("v_q")),
        );
        for cand in input.children_named("candidate") {
            let outcome = vstr(cand.field("outcome"));
            let who = format!(
                "{} @ {}",
                vstr(cand.field("flow")),
                vstr(cand.field("peer"))
            );
            if outcome == "rejected" {
                println!(
                    "    rejected  {who:<24} failed {}",
                    vstr(cand.field("reason"))
                );
            } else {
                println!(
                    "    {outcome:<9} {who:<24} C = {} (traffic {} + load {}){}{}",
                    vf64(cand.field("cost")),
                    vf64(cand.field("traffic")),
                    vf64(cand.field("load")),
                    if vbool(cand.field("feasible")) {
                        ""
                    } else {
                        "  [infeasible]"
                    },
                    if vbool(cand.field("chosen")) {
                        "  <- new best"
                    } else {
                        ""
                    },
                );
            }
        }
        if let Some(best) = input.children_named("best").last() {
            let cost = vf64(best.field("cost"));
            parts_sum += cost;
            println!(
                "    best      {} @ {:<17} C = {} (traffic {} + load {})",
                vstr(best.field("flow")),
                vstr(best.field("peer")),
                cost,
                vf64(best.field("traffic")),
                vf64(best.field("load")),
            );
        }
    }

    match result {
        Ok(registration) => {
            let plan = &registration.plan;
            let total = parts_sum + plan.post_cost;
            println!("  post-processing + delivery: C = {}", plan.post_cost);
            println!(
                "  C(P) = sum of best parts + post = {} + {} = {}",
                parts_sum, plan.post_cost, total
            );
            if total == plan.total_cost {
                println!(
                    "  matches the installed plan's total cost {} exactly",
                    plan.total_cost
                );
            } else {
                eprintln!(
                    "  MISMATCH: installed plan reports C(P) = {} (trace sums to {})",
                    plan.total_cost, total
                );
                return ExitCode::FAILURE;
            }
            println!();
            print!("{}", plan.describe(system.state()));
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn vstr(v: Option<&dss_telemetry::Value>) -> &str {
    match v {
        Some(dss_telemetry::Value::Str(s)) => s,
        _ => "?",
    }
}

fn vf64(v: Option<&dss_telemetry::Value>) -> f64 {
    match v {
        Some(dss_telemetry::Value::Float(f)) => *f,
        _ => f64::NAN,
    }
}

fn vbool(v: Option<&dss_telemetry::Value>) -> bool {
    matches!(v, Some(dss_telemetry::Value::Bool(true)))
}

fn check(args: &[String]) -> ExitCode {
    let text = match read_query_arg(args.first()) {
        Ok(t) => t,
        Err(e) => return usage_error(&e),
    };
    match compile_query(&text) {
        Ok(q) => {
            println!("input stream : {}", q.input_stream);
            println!("stream root  : {} / item {}", q.stream_root, q.item_name);
            println!("result root  : {}", q.result_root);
            println!("properties   : {}", q.properties);
            if let Some(agg) = &q.aggregation {
                println!("aggregation  : {agg}");
            }
            if let Some(w) = &q.window_output {
                println!("window output: {w}");
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn usage_error(msg: &str) -> ExitCode {
    eprintln!("error: {msg}");
    ExitCode::from(2)
}
