#!/usr/bin/env bash
# Mutation smoke-check for the differential harness.
#
# Deliberately breaks the identical-window rule in
# `dss_network::shared::ops_mergeable` — the mutant merges two
# aggregation instances whose windows differ, as long as everything else
# matches — and asserts that the differential suite *fails*. If the
# mutant survives, the harness has lost its teeth and this script exits
# non-zero. The original file is always restored.
#
# Usage: scripts/mutation_smoke.sh

set -u
cd "$(dirname "$0")/.."

FILE=crates/network/src/shared.rs
ORIG="$FILE.mutation-smoke.orig"

PATTERN='x\.window == y\.window \&\& x == y'
MUTANT='x.op == y.op \&\& x.element == y.element \&\& x.pre_selection == y.pre_selection \&\& x.result_filter == y.result_filter'

cp "$FILE" "$ORIG"
restore() {
    mv "$ORIG" "$FILE"
    # The copy kept its pre-mutation mtime; without this, cargo would
    # consider the mutant build up to date and keep its stale rlib.
    touch "$FILE"
}
trap restore EXIT

# Mutate only the first occurrence: the Aggregation arm.
sed -i "0,/$PATTERN/s//$MUTANT/" "$FILE"
if cmp -s "$FILE" "$ORIG"; then
    echo "mutation_smoke: FAILED to apply the mutation (pattern not found)" >&2
    exit 2
fi
echo "mutation_smoke: applied window-merge mutant to $FILE"

# The harness's own unit tests would catch this too, but the point is the
# end-to-end differential: fused deployments against the oracle.
if cargo test -q --test differential fused_aggregates_with_different_windows_stay_separate \
    >/tmp/mutation_smoke.log 2>&1; then
    echo "mutation_smoke: MUTANT SURVIVED — the differential harness did not catch it" >&2
    tail -20 /tmp/mutation_smoke.log >&2
    exit 1
fi
echo "mutation_smoke: mutant caught by the differential harness:"
grep -m 3 -E 'counterexample|panicked' /tmp/mutation_smoke.log || tail -5 /tmp/mutation_smoke.log
echo "mutation_smoke: OK"
