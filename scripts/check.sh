#!/usr/bin/env bash
# Full local gate: build, tests, lints, formatting.
# Run from anywhere; operates on the repository root.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> cargo bench --no-run"
cargo bench --no-run

echo "==> cargo clippy --all-targets -- -D warnings"
cargo clippy --all-targets -- -D warnings

echo "==> cargo fmt --check"
cargo fmt --check

echo "All checks passed."
