#!/usr/bin/env bash
# Full local gate: build, tests, lints, formatting.
# Run from anywhere; operates on the repository root.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> cargo bench --no-run"
cargo bench --no-run

echo "==> cargo clippy --all-targets -- -D warnings"
cargo clippy --all-targets -- -D warnings

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> trace snapshot conforms to schemas/trace.schema.json"
cargo build --release -q -p dss-bench --bins
TRACE_TMP=$(mktemp --suffix .trace.json)
trap 'rm -f "$TRACE_TMP"' EXIT
./target/release/experiments --trace "$TRACE_TMP" > /dev/null
./target/release/validate_trace "$TRACE_TMP"

echo "==> telemetry overhead guard (disabled recording must be free)"
./scripts/telemetry_overhead.sh

echo "==> registration smoke (indexed plan search stays flat at scale)"
# 100k subscriptions by default (~1.5 min); override with DSS_SMOKE_SUBS.
# Fails on plan divergence from the full-scan reference or when the last
# latency decile's p99 exceeds DSS_SMOKE_FLAT_RATIO (default 2.5) times
# the first decile's.
./target/release/registration_smoke

echo "==> widening handoff smoke (delta migration moves O(delta), not O(window))"
# Re-registers 1/4/16-flow shared DAGs across growing window sizes; fails
# when the migrated state scales with the window size instead of the open
# position count, when a snapshot drops, or when post-handoff outputs are
# not byte-identical to a continuous run of the widened chain.
./target/release/widening_smoke

echo "==> loopback Figure-2 smoke (dss serve fleet, byte-exact vs simulator)"
# Spawns a real 8-process loopback fleet per test; a wedged fleet must not
# hang the gate, so the whole suite runs behind a hard timeout.
timeout 300 cargo test --release -q --test serve

echo "All checks passed."
