#!/usr/bin/env bash
# Telemetry-overhead guard: the observability layer must be free when it is
# merely compiled in (recording disabled). Builds the `overhead` binary —
# the 16-flow fused shared_prefix simulation — once with default features
# (telemetry compiled in, off at run time) and once with
# --no-default-features (telemetry compiled out), times both, and fails if
# the compiled-in median exceeds the compiled-out median by more than
# DSS_OVERHEAD_PCT percent (default 10, chosen to sit above scheduler noise
# on shared CI runners; the design target is <2 %).
#
# Separate target dirs keep the two feature resolutions from thrashing one
# build cache.
set -euo pipefail
cd "$(dirname "$0")/.."

ITERATIONS="${DSS_OVERHEAD_ITERS:-30}"
THRESHOLD_PCT="${DSS_OVERHEAD_PCT:-10}"

echo "==> building overhead binary (telemetry compiled in)"
cargo build --release -q -p dss-bench --bin overhead \
    --target-dir target/overhead-on

echo "==> building overhead binary (telemetry compiled out)"
cargo build --release -q -p dss-bench --bin overhead --no-default-features \
    --target-dir target/overhead-off

median() {
    "$1" "$ITERATIONS" | tee /dev/stderr | awk '/^median_ns/ { print $2 }'
}

# Interleave-free but alternating-order-free too: run the compiled-out
# baseline first so a warm machine favours the guarded build if anything.
OFF_NS=$(median target/overhead-off/release/overhead)
ON_NS=$(median target/overhead-on/release/overhead)

DELTA_PCT=$(awk -v on="$ON_NS" -v off="$OFF_NS" \
    'BEGIN { printf "%.2f", (on - off) * 100.0 / off }')
echo "compiled-out median: ${OFF_NS} ns"
echo "compiled-in  median: ${ON_NS} ns (delta ${DELTA_PCT} %)"

PASS=$(awk -v d="$DELTA_PCT" -v t="$THRESHOLD_PCT" 'BEGIN { print (d <= t) ? 1 : 0 }')
if [ "$PASS" -ne 1 ]; then
    echo "FAIL: disabled telemetry costs ${DELTA_PCT} % (> ${THRESHOLD_PCT} % threshold)" >&2
    exit 1
fi
echo "PASS: disabled telemetry within ${THRESHOLD_PCT} % of the compiled-out build"
